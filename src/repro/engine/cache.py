"""On-disk cache for the engine's expensive build artifacts.

Three artifact kinds are cached, each in its own file under one directory:

* ``catalog-<key>.npz`` — the selectivity catalog (the dominant cost), stored
  as a compressed NumPy archive (see
  :meth:`repro.paths.catalog.SelectivityCatalog.save_npz`): the columnar
  frequency vector for dense-storage catalogs, the O(nnz)
  ``nz_indices``/``nz_values`` pair for sparse-storage ones; typically a
  small fraction of the size of the legacy ``catalog-<key>.json`` form,
  which is still *read* as a fallback so caches written before the columnar
  format keep warm-starting;
* ``histogram-<key>.json`` — the ordering + bucket table pair;
* ``positions-<key>.npy`` — the domain-position table used by the batched
  hot path (the permutation mapping enumeration order to ordering order).

Large catalogs additionally get an *uncompressed* mmap sidecar next to the
``.npz``: a ``catalog-<key>.npy`` sibling holding the frequency vector for
dense-storage catalogs, or a ``catalog-<key>.nzi.npy`` /
``catalog-<key>.nzv.npy`` pair holding the sorted nonzero indices and their
counts for sparse-storage ones.  Either lets domains past ``|L|^6`` be served
through ``np.load(mmap_mode="r")`` without materialising the arrays in
memory (``load_catalog(..., mmap=True)``; metadata still comes from the
``.npz``, whose members are decompressed lazily per array), and — because the
pages are read-only file cache — lets N forked serving workers share one
physical copy of the catalog.  A missing or stale sidecar (older than its
``.npz``, truncated, or shape-mismatched) silently falls back to the regular
in-memory ``.npz`` load.

Artifacts that fail to load (truncated archive, flipped bits, wrong shape)
surface as :class:`~repro.exceptions.EngineError`; the session reacts by
:meth:`ArtifactCache.quarantine`-ing the damaged file — an atomic rename to a
``*.corrupt`` sibling, preserved for inspection but invisible to every glob —
and rebuilding cold, so one corrupt artifact can never poison a key forever.

The cache supports maintenance now that many graphs can share one directory:
:meth:`ArtifactCache.evict` drops every artifact of one key and
:meth:`ArtifactCache.prune` enforces a byte budget by deleting
least-recently-used artifact files first (successful loads touch the file
mtime, so recency tracks reads, not just writes).

Keys are built by the session from the graph digest and a config digest
(:mod:`repro.engine.fingerprint`), so any change to the graph, ``k``, the
ordering, or the histogram parameters lands on a different file and a stale
artifact can never be served.  The config digest also carries a
``catalog_format`` version field (see
:meth:`repro.engine.session.EngineConfig.catalog_fields`), so a change to the
artifact layout re-keys every catalog and a pre-columnar JSON entry is never
half-trusted under a new-format key — the JSON fallback only ever fires for
files that were written (and fully validated) by an older release under its
own key.  Writes are atomic (temp file + ``os.replace``) so a crashed build
never leaves a truncated artifact behind; a crashed *process* can still
leave its temp file, so cache init sweeps dotfile temps older than an hour
(counted in :attr:`ArtifactCache.temp_cleaned`) and every artifact glob
skips in-flight temps.

The cache can be backed by a **remote tier**
(:class:`~repro.engine.remote.RemoteArtifactStore`): on a local miss the
remote store is consulted — a digest-verified copy lands in the local
directory and the load proceeds as a hit — and after a local build each
stored primary artifact is pushed back, best-effort, in the background.
Remote payloads that fail verification are quarantined (counted exactly
like local corruption) and remote failures of any kind degrade to a plain
local miss; the remote tier can never make a lookup raise.
"""

from __future__ import annotations

import os
import time
import uuid
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.exceptions import EngineError, ReproError
from repro.obs.metrics import Counter
from repro.testing import faults
from repro.histogram.builder import LabelPathHistogram
from repro.histogram.serialization import load_histogram, save_histogram
from repro.paths.catalog import SelectivityCatalog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (remote -> cache)
    from repro.engine.remote import RemoteArtifactStore

__all__ = ["ArtifactCache"]

#: Domains at or past ``|L|^6`` get the uncompressed mmap sidecar by default.
_MMAP_SIDECAR_POWER = 6

#: Process-wide artifact-cache telemetry: every :class:`ArtifactCache`
#: instance feeds the same series (the per-instance ``hits``/``misses``
#: attributes remain for the session's build stats).
_CACHE_HITS = Counter(
    "repro_cache_hits_total",
    "Artifact-cache loads answered from disk, by artifact kind.",
    labelnames=("kind",),
)
_CACHE_MISSES = Counter(
    "repro_cache_misses_total",
    "Artifact-cache lookups that found no artifact, by artifact kind.",
    labelnames=("kind",),
)
_CACHE_QUARANTINED = Counter(
    "repro_cache_quarantined_total",
    "Corrupt artifact files renamed aside for cold rebuild.",
)
_CACHE_TEMP_CLEANED = Counter(
    "repro_cache_temp_cleaned_total",
    "Stale in-flight temp files swept at cache init.",
)

#: Temp files younger than this at init are presumed to belong to a live
#: writer in another process and are left alone.
_TEMP_MAX_AGE_SECONDS = 3600.0


class ArtifactCache:
    """Directory-backed store for catalogs, histograms and position tables.

    The cache is deliberately dumb: it has no eviction and no locking beyond
    atomic renames, because artifacts are immutable for a given key.  ``hits``
    and ``misses`` count lookups and feed the session's build stats;
    ``remote_hits`` counts the subset of hits that were materialised from
    the optional ``remote`` tier, and ``temp_cleaned`` the stale temp files
    swept at init.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        remote: Optional["RemoteArtifactStore"] = None,
        temp_max_age_seconds: float = _TEMP_MAX_AGE_SECONDS,
    ) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self.remote = remote
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.remote_hits = 0
        self.temp_cleaned = 0
        self._sweep_temps(temp_max_age_seconds)

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def catalog_path(self, key: str) -> Path:
        """File path of the catalog artifact for ``key`` (columnar ``.npz``)."""
        return self._root / f"catalog-{key}.npz"

    def legacy_catalog_path(self, key: str) -> Path:
        """File path of the pre-columnar JSON catalog artifact for ``key``."""
        return self._root / f"catalog-{key}.json"

    def mmap_catalog_path(self, key: str) -> Path:
        """File path of the uncompressed frequency-vector sidecar for ``key``."""
        return self._root / f"catalog-{key}.npy"

    def sparse_indices_path(self, key: str) -> Path:
        """File path of the uncompressed sparse nonzero-index sidecar."""
        return self._root / f"catalog-{key}.nzi.npy"

    def sparse_values_path(self, key: str) -> Path:
        """File path of the uncompressed sparse nonzero-count sidecar."""
        return self._root / f"catalog-{key}.nzv.npy"

    def _sidecar_paths(self, key: str) -> tuple[Path, Path, Path]:
        """Every mmap sidecar path ``key`` can carry (dense + sparse pair)."""
        return (
            self.mmap_catalog_path(key),
            self.sparse_indices_path(key),
            self.sparse_values_path(key),
        )

    def histogram_path(self, key: str) -> Path:
        """File path of the histogram artifact for ``key``."""
        return self._root / f"histogram-{key}.json"

    def positions_path(self, key: str) -> Path:
        """File path of the position-table artifact for ``key``."""
        return self._root / f"positions-{key}.npy"

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def load_catalog(
        self, key: str, *, legacy_key: Optional[str] = None, mmap: bool = False
    ) -> Optional[SelectivityCatalog]:
        """The cached catalog for ``key``, or ``None`` on a miss.

        The columnar ``.npz`` artifact is preferred.  A legacy ``.json``
        artifact written by a pre-columnar release is read as a fallback —
        under ``legacy_key`` when given (the old releases keyed catalogs
        without the ``catalog_format`` field, so their keys differ), else
        under ``key`` itself.

        ``mmap=True`` asks for a memory-mapped catalog: when the matching
        uncompressed sidecar exists — the ``.npy`` frequency vector for a
        dense archive, the ``.nzi.npy``/``.nzv.npy`` nonzero pair for a
        sparse one — the arrays are opened with ``np.load(mmap_mode="r")``
        (read-only pages faulted in on demand) and only the small metadata
        members of the ``.npz`` are decompressed.  Without a usable sidecar
        (missing, stale, or shape-mismatched) the request silently falls
        back to the regular in-memory load, so callers can always pass
        their preference.

        With a remote tier configured, a double local miss (no ``.npz``, no
        legacy JSON) consults the remote store before giving up; a verified
        fetch lands the ``.npz`` locally and the load proceeds as a hit.
        """
        faults.fire("cache.load_catalog", key=key)
        path = self.catalog_path(key)
        if not path.exists():
            legacy = self.legacy_catalog_path(
                legacy_key if legacy_key is not None else key
            )
            if legacy.exists():
                path = legacy
            elif not self._fetch_remote(self.catalog_path(key)):
                self.misses += 1
                _CACHE_MISSES.inc(kind="catalog")
                return None
        try:
            if mmap and path == self.catalog_path(key):
                catalog = self._load_catalog_mmap(key, path)
            else:
                catalog = SelectivityCatalog.load(path)
        except FileNotFoundError:
            # Racing eviction/prune between the existence probe and the
            # open: the artifact is simply gone — a clean miss, not damage.
            self.misses += 1
            _CACHE_MISSES.inc(kind="catalog")
            return None
        except (
            ReproError,
            OSError,
            ValueError,
            zipfile.BadZipFile,
            zlib.error,
        ) as exc:
            # BadZipFile: np.load raises it for a truncated/corrupt archive
            # that still begins with the zip magic bytes.  zlib.error: a
            # bit-flip inside a deflated member corrupts the stream itself,
            # which surfaces before the CRC is ever checked.
            raise self._corrupt_error("catalog", path, exc) from exc
        self.hits += 1
        _CACHE_HITS.inc(kind="catalog")
        self._touch(path)
        # Sidecars share the npz's recency so LRU pruning never splits the
        # pair from its archive (a later mmap load would then go stale).
        for sidecar in self._sidecar_paths(key):
            if sidecar.exists():
                self._touch(sidecar)
        return catalog

    @staticmethod
    def _corrupt_error(kind: str, path: Path, cause: Exception) -> EngineError:
        """An :class:`EngineError` for a damaged artifact, carrying its path.

        ``artifact_path`` lets the session quarantine exactly the file that
        failed to parse (the legacy-JSON fallback lives under a *different*
        key than the one being loaded, so the key alone cannot name it).
        """
        error = EngineError(f"corrupt cached {kind} at {path}: {cause}")
        error.artifact_path = path
        return error

    def _load_catalog_mmap(self, key: str, npz_path: Path) -> SelectivityCatalog:
        """Catalog with metadata from ``npz_path`` and mmap'd arrays.

        Dense archives adopt the ``.npy`` frequency-vector sidecar; sparse
        archives adopt the ``.nzi.npy``/``.nzv.npy`` nonzero pair.  A
        *missing or stale* sidecar falls back silently to the regular
        in-memory ``.npz`` load (it simply is not there to use — a deleted
        sidecar never takes a key down).  A *fresh but unreadable or
        mis-shaped* one is damage: the raised error flows through
        :meth:`load_catalog`'s corrupt-artifact path, so the session
        quarantines the family and rebuilds, exactly like a damaged
        archive.
        """
        with np.load(npz_path, allow_pickle=False) as archive:
            if "explicit" in archive.files:
                # Pruned-mapping masks are not modelled by the mmap path;
                # they are small by construction, so load them normally.
                return SelectivityCatalog.load(npz_path)
            sparse = "nz_indices" in archive.files
            labels = [str(label) for label in archive["labels"]]
            max_length = int(archive["max_length"])
            graph_name = str(archive["graph_name"])
        if sparse:
            indices_path = self.sparse_indices_path(key)
            values_path = self.sparse_values_path(key)
            if not self._sidecar_fresh(npz_path, indices_path, values_path):
                return SelectivityCatalog.load(npz_path)
            indices = np.load(indices_path, mmap_mode="r", allow_pickle=False)
            values = np.load(values_path, mmap_mode="r", allow_pickle=False)
            if (
                indices.dtype != np.int64
                or values.dtype != np.int64
                or indices.ndim != 1
                or indices.shape != values.shape
            ):
                raise ValueError(
                    f"sparse sidecar shape/dtype mismatch for {key}: "
                    f"{indices.dtype}{indices.shape} vs {values.dtype}{values.shape}"
                )
            return SelectivityCatalog.from_nonzeros(
                labels,
                max_length,
                indices,
                values,
                graph_name=graph_name,
                copy=False,
            )
        sidecar = self.mmap_catalog_path(key)
        if not self._sidecar_fresh(npz_path, sidecar):
            return SelectivityCatalog.load(npz_path)
        frequencies = np.load(sidecar, mmap_mode="r", allow_pickle=False)
        return SelectivityCatalog.from_frequencies(
            labels, max_length, frequencies, graph_name=graph_name, copy=False
        )

    @staticmethod
    def _sidecar_fresh(npz_path: Path, *sidecars: Path) -> bool:
        """Whether every sidecar exists and is no older than its archive.

        ``store_catalog`` writes sidecars after the ``.npz`` and loads touch
        the whole family together, so a sidecar left behind by an *earlier*
        store (the archive was since rewritten without one) reads as stale.
        """
        try:
            npz_mtime = npz_path.stat().st_mtime
            return all(path.stat().st_mtime >= npz_mtime for path in sidecars)
        except OSError:
            return False

    def _temp_path(self, final: Path, suffix: str = ".tmp") -> Path:
        """A unique temp path next to ``final`` (safe under concurrent writers)."""
        return final.with_name(f".{final.name}.{os.getpid()}.{uuid.uuid4().hex}{suffix}")

    # ------------------------------------------------------------------
    # remote tier
    # ------------------------------------------------------------------
    def _fetch_remote(self, final: Path) -> bool:
        """Try to materialise ``final`` from the remote tier; whether it landed.

        Every non-hit outcome — miss, store unavailable, open breaker,
        failed verification — returns ``False`` and the caller records a
        plain local miss; a corrupt payload additionally counts as a
        quarantine (the remote store already parked it as a ``.corrupt``
        sibling, never under the real name).
        """
        if self.remote is None:
            return False
        outcome = self.remote.fetch(final.name, final)
        if outcome == "hit":
            self.remote_hits += 1
            return True
        if outcome == "corrupt":
            self.quarantined += 1
            _CACHE_QUARANTINED.inc()
        return False

    def _push_remote(self, path: Path) -> None:
        """Offer one freshly stored primary artifact to the remote tier.

        Background and best-effort by contract: the push thread logs and
        counts failures inside the store, and nothing propagates here.
        """
        if self.remote is not None:
            self.remote.push_async(path)

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh ``path``'s timestamps so LRU pruning tracks reads.

        Filesystems mounted ``noatime`` never update access times on their
        own, so recency is recorded explicitly; failure is ignored (a
        read-only cache directory must not break loading).
        """
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - depends on filesystem permissions
            pass

    def store_catalog(
        self,
        key: str,
        catalog: SelectivityCatalog,
        *,
        mmap_sidecar: Optional[bool] = None,
    ) -> Path:
        """Persist ``catalog`` under ``key`` (atomic, ``.npz``); returns the path.

        ``mmap_sidecar`` controls the uncompressed sidecar(s) that
        :meth:`load_catalog` needs for ``mmap=True`` — the ``.npy``
        frequency vector for dense storage, the ``.nzi.npy``/``.nzv.npy``
        nonzero pair for sparse storage.  ``True`` forces the sidecar,
        ``False`` suppresses it, and ``None`` (default) writes it
        automatically for domains at or past ``|L|^6`` — the scale where
        holding a private decompressed copy in every process stops being
        free.  Sidecars are written *after* the ``.npz`` so the freshness
        check in :meth:`load_catalog` holds; a store that suppresses the
        sidecar leaves any older one behind as stale rather than trusted.
        """
        path = self.catalog_path(key)
        temp = self._temp_path(path)
        catalog.save_npz(temp)
        os.replace(temp, path)
        self._push_remote(path)
        if self._sidecar_wanted(catalog, mmap_sidecar):
            self._write_sidecars(key, catalog)
        return path

    @staticmethod
    def _sidecar_wanted(
        catalog: SelectivityCatalog, mmap_sidecar: Optional[bool]
    ) -> bool:
        """Resolve the sidecar policy for one catalog (see :meth:`store_catalog`)."""
        if mmap_sidecar is None:
            mmap_sidecar = (
                catalog.domain_size >= len(catalog.labels) ** _MMAP_SIDECAR_POWER
            )
        if mmap_sidecar and not catalog.is_dense:
            # _load_catalog_mmap cannot model the explicit-path mask; it
            # falls back, so a sidecar would be dead weight on disk.
            mmap_sidecar = False
        if mmap_sidecar and catalog.storage == "sparse" and catalog.nnz == 0:
            # A zero-length array cannot be memory-mapped; the npz load of
            # an empty catalog is trivially cheap anyway.
            mmap_sidecar = False
        return bool(mmap_sidecar)

    def _write_sidecars(self, key: str, catalog: SelectivityCatalog) -> None:
        """Write the uncompressed mmap sidecar(s) for ``key`` (atomic).

        Sidecars never travel to the remote tier — they are derivable from
        the ``.npz`` and their freshness contract is local-mtime-based.
        """
        if catalog.storage == "sparse":
            nz_indices, nz_values = catalog.nonzero_arrays()
            for target, array in (
                (self.sparse_indices_path(key), nz_indices),
                (self.sparse_values_path(key), nz_values),
            ):
                temp = self._temp_path(target, suffix=".tmp.npy")
                np.save(temp, np.asarray(array), allow_pickle=False)
                os.replace(temp, target)
        else:
            sidecar = self.mmap_catalog_path(key)
            temp = self._temp_path(sidecar, suffix=".tmp.npy")
            np.save(temp, catalog.frequency_vector(), allow_pickle=False)
            os.replace(temp, sidecar)

    def ensure_sidecars(self, key: str, catalog: SelectivityCatalog) -> bool:
        """Backfill the mmap sidecar(s) for an already stored ``key``.

        A remote warm-start lands only the ``.npz`` (sidecars are local
        derivatives), so a prefork parent that wants children sharing pages
        calls this after the fetch.  Applies the same default policy as
        :meth:`store_catalog`; fresh sidecars are left untouched.  Returns
        whether usable sidecars exist afterwards.
        """
        npz = self.catalog_path(key)
        if not npz.exists() or not self._sidecar_wanted(catalog, None):
            return False
        if catalog.storage == "sparse":
            fresh = self._sidecar_fresh(
                npz, self.sparse_indices_path(key), self.sparse_values_path(key)
            )
        else:
            fresh = self._sidecar_fresh(npz, self.mmap_catalog_path(key))
        if not fresh:
            self._write_sidecars(key, catalog)
        return True

    # ------------------------------------------------------------------
    # histogram
    # ------------------------------------------------------------------
    def load_histogram(self, key: str) -> Optional[LabelPathHistogram]:
        """The cached histogram for ``key``, or ``None`` on a miss.

        A local miss consults the remote tier when one is configured.
        """
        path = self.histogram_path(key)
        if not path.exists() and not self._fetch_remote(path):
            self.misses += 1
            _CACHE_MISSES.inc(kind="histogram")
            return None
        try:
            histogram = load_histogram(path)
        except FileNotFoundError:
            self.misses += 1
            _CACHE_MISSES.inc(kind="histogram")
            return None
        except (ReproError, OSError, ValueError) as exc:
            raise self._corrupt_error("histogram", path, exc) from exc
        self.hits += 1
        _CACHE_HITS.inc(kind="histogram")
        self._touch(path)
        return histogram

    def store_histogram(self, key: str, histogram: LabelPathHistogram) -> Path:
        """Persist ``histogram`` under ``key`` (atomic); returns the file path."""
        path = self.histogram_path(key)
        temp = self._temp_path(path)
        save_histogram(histogram, temp)
        os.replace(temp, path)
        self._push_remote(path)
        return path

    # ------------------------------------------------------------------
    # position table
    # ------------------------------------------------------------------
    def load_positions(self, key: str) -> Optional[np.ndarray]:
        """The cached position table for ``key``, or ``None`` on a miss.

        A local miss consults the remote tier when one is configured.
        """
        path = self.positions_path(key)
        if not path.exists() and not self._fetch_remote(path):
            self.misses += 1
            _CACHE_MISSES.inc(kind="positions")
            return None
        try:
            positions = np.load(path, allow_pickle=False)
        except FileNotFoundError:
            self.misses += 1
            _CACHE_MISSES.inc(kind="positions")
            return None
        except (OSError, ValueError) as exc:
            raise self._corrupt_error("position table", path, exc) from exc
        self.hits += 1
        _CACHE_HITS.inc(kind="positions")
        self._touch(path)
        return positions

    def store_positions(self, key: str, positions: np.ndarray) -> Path:
        """Persist a position table under ``key`` (atomic); returns the path."""
        path = self.positions_path(key)
        # np.save appends ".npy" unless the name already ends with it.
        temp = self._temp_path(path, suffix=".tmp.npy")
        np.save(temp, positions, allow_pickle=False)
        os.replace(temp, path)
        self._push_remote(path)
        return path

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def quarantine(self, key: str, kind: str = "catalog") -> list[Path]:
        """Rename ``kind``'s artifacts for ``key`` to ``*.corrupt`` siblings.

        Called by the session when a cached artifact fails to load: the
        damaged file is moved aside (never deleted — an operator can inspect
        it) so the next load is a clean miss and the build proceeds cold.
        Quarantined files no longer match the artifact globs, so
        :meth:`artifact_files`, :meth:`total_bytes` and :meth:`prune` all
        skip them.  Returns the new paths; increments :attr:`quarantined`
        per file moved.
        """
        if kind == "catalog":
            candidates = (
                self.catalog_path(key),
                *self._sidecar_paths(key),
                self.legacy_catalog_path(key),
            )
        elif kind == "histogram":
            candidates = (self.histogram_path(key),)
        elif kind == "positions":
            candidates = (self.positions_path(key),)
        else:
            raise EngineError(f"unknown artifact kind to quarantine: {kind!r}")
        moved: list[Path] = []
        for path in candidates:
            target = self.quarantine_path(path)
            if target is not None:
                moved.append(target)
        return moved

    def quarantine_path(self, path: Union[str, Path]) -> Optional[Path]:
        """Rename one artifact file to its ``.corrupt`` sibling (atomic).

        Returns the new path, or ``None`` when the file does not exist (or
        cannot be renamed).  Increments :attr:`quarantined` on success.
        """
        path = Path(path)
        if not path.exists():
            return None
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - depends on fs permissions
            return None
        self.quarantined += 1
        _CACHE_QUARANTINED.inc()
        return target

    def quarantined_files(self) -> list[Path]:
        """Every ``*.corrupt`` file currently parked in the cache directory."""
        return sorted(self._root.glob("*.corrupt"))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def temp_files(self) -> list[Path]:
        """Every in-flight temp file currently in the cache directory.

        Writers stage under dot-prefixed names
        (``.{artifact}.{pid}.{uuid}.tmp[.npy]``), so temps are invisible to
        the artifact globs; this surfaces them for the init sweep, debris
        checks in the chaos benchmarks, and operators.
        """
        return sorted(
            path for path in self._root.glob(".*.tmp*") if path.is_file()
        )

    def _sweep_temps(self, max_age_seconds: float) -> None:
        """Delete stale temp files left behind by crashed writers.

        Only temps older than ``max_age_seconds`` go — a younger one may
        belong to a live build in another process, and its writer's
        ``os.replace`` would fail if the file vanished underneath it.
        Counts into :attr:`temp_cleaned` and the process-wide metric.
        """
        if max_age_seconds < 0:
            return
        now = time.time()
        for path in self.temp_files():
            try:
                if now - path.stat().st_mtime < max_age_seconds:
                    continue
                path.unlink()
            except OSError:  # racing sweeper or live writer finishing
                continue
            self.temp_cleaned += 1
            _CACHE_TEMP_CLEANED.inc()

    def artifact_files(self) -> list[Path]:
        """All artifact files currently in the cache, sorted by name.

        In-flight temp files never count: writers stage under dot-prefixed
        ``*.tmp*`` names, and the explicit filter here keeps any foreign
        ``.tmp`` debris out of :meth:`total_bytes` and :meth:`prune` even if
        it matches an artifact pattern.
        """
        patterns = (
            "catalog-*.npz",
            "catalog-*.npy",
            "catalog-*.json",
            "histogram-*.json",
            "positions-*.npy",
        )
        found: list[Path] = []
        for pattern in patterns:
            found.extend(
                path for path in self._root.glob(pattern) if ".tmp" not in path.name
            )
        return sorted(found)

    def total_bytes(self) -> int:
        """Total size of every artifact file currently in the cache."""
        total = 0
        for path in self.artifact_files():
            try:
                total += path.stat().st_size
            except OSError:  # racing deleter; the file no longer counts
                continue
        return total

    def evict(self, key: str) -> int:
        """Delete every artifact stored under ``key``; returns files removed."""
        removed = 0
        for path in (
            self.catalog_path(key),
            *self._sidecar_paths(key),
            self.legacy_catalog_path(key),
            self.histogram_path(key),
            self.positions_path(key),
        ):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue
        return removed

    def prune(self, max_bytes: int) -> list[Path]:
        """Delete least-recently-used artifacts until the cache fits ``max_bytes``.

        Recency is the file's latest timestamp (``max(mtime, atime)`` —
        loads refresh mtime explicitly, so a warm artifact survives a colder,
        larger neighbour).  Returns the deleted paths, oldest first.  A
        negative budget is rejected; ``0`` clears everything.
        """
        if max_bytes < 0:
            raise EngineError(f"prune budget must be >= 0, got {max_bytes}")
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.artifact_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((max(stat.st_mtime, stat.st_atime), stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda entry: (entry[0], entry[2].name))
        removed: list[Path] = []
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            total -= size
            removed.append(path)
        return removed

    def clear(self) -> int:
        """Delete every artifact file; returns the number removed."""
        removed = 0
        for path in self.artifact_files():
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<ArtifactCache root={str(self._root)!r} files={len(self.artifact_files())} "
            f"hits={self.hits} misses={self.misses}>"
        )
