"""On-disk cache for the engine's expensive build artifacts.

Three artifact kinds are cached, each in its own file under one directory:

* ``catalog-<key>.npz`` — the selectivity catalog (the dominant cost), stored
  as the columnar frequency vector in a compressed NumPy archive (see
  :meth:`repro.paths.catalog.SelectivityCatalog.save_npz`); typically a small
  fraction of the size of the legacy ``catalog-<key>.json`` form, which is
  still *read* as a fallback so caches written before the columnar format
  keep warm-starting;
* ``histogram-<key>.json`` — the ordering + bucket table pair;
* ``positions-<key>.npy`` — the domain-position table used by the batched
  hot path (the permutation mapping enumeration order to ordering order).

Keys are built by the session from the graph digest and a config digest
(:mod:`repro.engine.fingerprint`), so any change to the graph, ``k``, the
ordering, or the histogram parameters lands on a different file and a stale
artifact can never be served.  The config digest also carries a
``catalog_format`` version field (see
:meth:`repro.engine.session.EngineConfig.catalog_fields`), so a change to the
artifact layout re-keys every catalog and a pre-columnar JSON entry is never
half-trusted under a new-format key — the JSON fallback only ever fires for
files that were written (and fully validated) by an older release under its
own key.  Writes are atomic (temp file + ``os.replace``) so a crashed build
never leaves a truncated artifact behind.
"""

from __future__ import annotations

import os
import uuid
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.exceptions import EngineError, ReproError
from repro.histogram.builder import LabelPathHistogram
from repro.histogram.serialization import load_histogram, save_histogram
from repro.paths.catalog import SelectivityCatalog

__all__ = ["ArtifactCache"]


class ArtifactCache:
    """Directory-backed store for catalogs, histograms and position tables.

    The cache is deliberately dumb: it has no eviction and no locking beyond
    atomic renames, because artifacts are immutable for a given key.  ``hits``
    and ``misses`` count lookups and feed the session's build stats.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> Path:
        """The cache directory."""
        return self._root

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def catalog_path(self, key: str) -> Path:
        """File path of the catalog artifact for ``key`` (columnar ``.npz``)."""
        return self._root / f"catalog-{key}.npz"

    def legacy_catalog_path(self, key: str) -> Path:
        """File path of the pre-columnar JSON catalog artifact for ``key``."""
        return self._root / f"catalog-{key}.json"

    def histogram_path(self, key: str) -> Path:
        """File path of the histogram artifact for ``key``."""
        return self._root / f"histogram-{key}.json"

    def positions_path(self, key: str) -> Path:
        """File path of the position-table artifact for ``key``."""
        return self._root / f"positions-{key}.npy"

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def load_catalog(
        self, key: str, *, legacy_key: Optional[str] = None
    ) -> Optional[SelectivityCatalog]:
        """The cached catalog for ``key``, or ``None`` on a miss.

        The columnar ``.npz`` artifact is preferred.  A legacy ``.json``
        artifact written by a pre-columnar release is read as a fallback —
        under ``legacy_key`` when given (the old releases keyed catalogs
        without the ``catalog_format`` field, so their keys differ), else
        under ``key`` itself.
        """
        path = self.catalog_path(key)
        if not path.exists():
            legacy = self.legacy_catalog_path(
                legacy_key if legacy_key is not None else key
            )
            if not legacy.exists():
                self.misses += 1
                return None
            path = legacy
        try:
            catalog = SelectivityCatalog.load(path)
        except (ReproError, OSError, ValueError, zipfile.BadZipFile) as exc:
            # BadZipFile: np.load raises it for a truncated/corrupt archive
            # that still begins with the zip magic bytes.
            raise EngineError(f"corrupt cached catalog at {path}: {exc}") from exc
        self.hits += 1
        return catalog

    def _temp_path(self, final: Path, suffix: str = ".tmp") -> Path:
        """A unique temp path next to ``final`` (safe under concurrent writers)."""
        return final.with_name(f".{final.name}.{os.getpid()}.{uuid.uuid4().hex}{suffix}")

    def store_catalog(self, key: str, catalog: SelectivityCatalog) -> Path:
        """Persist ``catalog`` under ``key`` (atomic, ``.npz``); returns the path."""
        path = self.catalog_path(key)
        temp = self._temp_path(path)
        catalog.save_npz(temp)
        os.replace(temp, path)
        return path

    # ------------------------------------------------------------------
    # histogram
    # ------------------------------------------------------------------
    def load_histogram(self, key: str) -> Optional[LabelPathHistogram]:
        """The cached histogram for ``key``, or ``None`` on a miss."""
        path = self.histogram_path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            histogram = load_histogram(path)
        except (ReproError, OSError, ValueError) as exc:
            raise EngineError(f"corrupt cached histogram at {path}: {exc}") from exc
        self.hits += 1
        return histogram

    def store_histogram(self, key: str, histogram: LabelPathHistogram) -> Path:
        """Persist ``histogram`` under ``key`` (atomic); returns the file path."""
        path = self.histogram_path(key)
        temp = self._temp_path(path)
        save_histogram(histogram, temp)
        os.replace(temp, path)
        return path

    # ------------------------------------------------------------------
    # position table
    # ------------------------------------------------------------------
    def load_positions(self, key: str) -> Optional[np.ndarray]:
        """The cached position table for ``key``, or ``None`` on a miss."""
        path = self.positions_path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            positions = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise EngineError(f"corrupt cached position table at {path}: {exc}") from exc
        self.hits += 1
        return positions

    def store_positions(self, key: str, positions: np.ndarray) -> Path:
        """Persist a position table under ``key`` (atomic); returns the path."""
        path = self.positions_path(key)
        # np.save appends ".npy" unless the name already ends with it.
        temp = self._temp_path(path, suffix=".tmp.npy")
        np.save(temp, positions, allow_pickle=False)
        os.replace(temp, path)
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def artifact_files(self) -> list[Path]:
        """All artifact files currently in the cache, sorted by name."""
        patterns = (
            "catalog-*.npz",
            "catalog-*.json",
            "histogram-*.json",
            "positions-*.npy",
        )
        found: list[Path] = []
        for pattern in patterns:
            found.extend(self._root.glob(pattern))
        return sorted(found)

    def clear(self) -> int:
        """Delete every artifact file; returns the number removed."""
        removed = 0
        for path in self.artifact_files():
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<ArtifactCache root={str(self._root)!r} files={len(self.artifact_files())} "
            f"hits={self.hits} misses={self.misses}>"
        )
