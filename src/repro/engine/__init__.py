"""The batched estimation engine: build once, cache, serve in bulk.

This subsystem packages the paper's offline pipeline (label matrices →
selectivity catalog → ordering → histogram) into a reusable
:class:`~repro.engine.session.EstimationSession` with

* an on-disk :class:`~repro.engine.cache.ArtifactCache` keyed by graph and
  config fingerprints (:mod:`repro.engine.fingerprint`), so warm starts skip
  catalog construction entirely,
* an optional :class:`~repro.engine.remote.RemoteArtifactStore` behind the
  cache — a shared content-addressed HTTP tier with verified fetches,
  best-effort pushes and a circuit breaker, so one replica's cold build
  warm-starts the whole fleet, and
* a vectorised ``estimate_batch`` hot path that answers thousands of
  selectivity estimates per call.
"""

from repro.engine.cache import ArtifactCache
from repro.engine.fingerprint import config_digest, graph_digest
from repro.engine.remote import RemoteArtifactStore
from repro.engine.session import EngineConfig, EstimationSession, SessionStats

__all__ = [
    "ArtifactCache",
    "EngineConfig",
    "EstimationSession",
    "RemoteArtifactStore",
    "SessionStats",
    "config_digest",
    "graph_digest",
]
