"""Reading and writing edge-labeled graphs.

Two interchange formats are supported:

* **edge list** — one edge per line, ``source <sep> label <sep> target``,
  with ``#``-prefixed comment lines.  This covers the KONECT / SNAP style
  files the paper's datasets are distributed in.
* **JSON** — a small self-describing document with vertex and edge arrays,
  convenient for fixtures and round-tripping generated datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, TextIO, Union

from repro.exceptions import GraphIOError
from repro.graph.digraph import LabeledDiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
]

PathLike = Union[str, Path]


def _open_for_read(source: Union[PathLike, TextIO]):
    """Return ``(file_object, should_close)`` for a path or open text file."""
    if hasattr(source, "read"):
        return source, False
    return open(Path(source), "r", encoding="utf-8"), True


def _open_for_write(target: Union[PathLike, TextIO]):
    """Return ``(file_object, should_close)`` for a path or open text file."""
    if hasattr(target, "write"):
        return target, False
    return open(Path(target), "w", encoding="utf-8"), True


def read_edge_list(
    source: Union[PathLike, TextIO],
    *,
    separator: Optional[str] = None,
    comment: str = "#",
    name: str = "",
    default_label: Optional[str] = None,
) -> LabeledDiGraph:
    """Read a graph from an edge-list file.

    Each non-empty, non-comment line must contain ``source label target``
    (three fields) or, when ``default_label`` is given, ``source target``
    (two fields, all edges receiving ``default_label``).  Fields are split on
    ``separator`` (``None`` means any whitespace, like ``str.split``).

    Raises
    ------
    GraphIOError
        If a line has an unexpected number of fields.
    """
    handle, should_close = _open_for_read(source)
    graph = LabeledDiGraph(name=name)
    try:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(comment):
                continue
            fields = line.split(separator)
            if len(fields) == 3:
                source_vertex, label, target_vertex = fields
            elif len(fields) == 2 and default_label is not None:
                source_vertex, target_vertex = fields
                label = default_label
            else:
                raise GraphIOError(
                    f"line {line_number}: expected 3 fields "
                    f"(source label target), got {len(fields)}: {line!r}"
                )
            graph.add_edge(source_vertex, label, target_vertex)
    finally:
        if should_close:
            handle.close()
    return graph


def write_edge_list(
    graph: LabeledDiGraph,
    target: Union[PathLike, TextIO],
    *,
    separator: str = "\t",
    header: bool = True,
) -> None:
    """Write ``graph`` as an edge-list file (``source label target`` per line)."""
    handle, should_close = _open_for_write(target)
    try:
        if header:
            handle.write(
                f"# graph: {graph.name or 'unnamed'}  "
                f"vertices={graph.vertex_count} edges={graph.edge_count} "
                f"labels={graph.label_count}\n"
            )
        for edge in sorted(graph.edges(), key=lambda e: (str(e.source), e.label, str(e.target))):
            handle.write(
                f"{edge.source}{separator}{edge.label}{separator}{edge.target}\n"
            )
    finally:
        if should_close:
            handle.close()


def write_json_graph(
    graph: LabeledDiGraph, target: Union[PathLike, TextIO], *, indent: int = 2
) -> None:
    """Write ``graph`` as a JSON document with ``vertices`` and ``edges`` arrays."""
    document = {
        "name": graph.name,
        "vertices": [str(v) for v in graph.vertices()],
        "edges": [
            [str(edge.source), edge.label, str(edge.target)]
            for edge in graph.edges()
        ],
    }
    handle, should_close = _open_for_write(target)
    try:
        json.dump(document, handle, indent=indent, sort_keys=True)
        handle.write("\n")
    finally:
        if should_close:
            handle.close()


def read_json_graph(source: Union[PathLike, TextIO]) -> LabeledDiGraph:
    """Read a graph previously written by :func:`write_json_graph`."""
    handle, should_close = _open_for_read(source)
    try:
        document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise GraphIOError(f"invalid JSON graph document: {exc}") from exc
    finally:
        if should_close:
            handle.close()
    if not isinstance(document, dict) or "edges" not in document:
        raise GraphIOError("JSON graph document must be an object with an 'edges' array")
    graph = LabeledDiGraph(name=str(document.get("name", "")))
    for vertex in document.get("vertices", []):
        graph.add_vertex(vertex)
    for entry in document["edges"]:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise GraphIOError(f"invalid edge entry: {entry!r}")
        source_vertex, label, target_vertex = entry
        graph.add_edge(source_vertex, str(label), target_vertex)
    return graph
