"""Descriptive statistics over edge-labeled graphs.

The main entry point, :func:`summarize_graph`, produces the per-dataset row
used by the Table 3 reproduction (#edge labels, #vertices, #edges) together
with richer structural statistics (degree distribution moments, label
frequency skew) that the dataset stand-ins are validated against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.graph.digraph import LabeledDiGraph

__all__ = ["GraphSummary", "summarize_graph", "label_frequency_skew", "gini_coefficient"]


@dataclass(frozen=True)
class GraphSummary:
    """Summary statistics of a labeled graph.

    Attributes mirror the columns of the paper's Table 3 plus a few structural
    measures used in tests and documentation.
    """

    name: str
    label_count: int
    vertex_count: int
    edge_count: int
    label_edge_counts: dict[str, int] = field(default_factory=dict)
    mean_out_degree: float = 0.0
    max_out_degree: int = 0
    mean_in_degree: float = 0.0
    max_in_degree: int = 0
    label_gini: float = 0.0

    def as_table_row(self) -> dict[str, object]:
        """The row shape of the paper's Table 3."""
        return {
            "Dataset": self.name,
            "#Edge Labels": self.label_count,
            "#Vertices": self.vertex_count,
            "#Edges": self.edge_count,
        }


def gini_coefficient(values: list[int]) -> float:
    """Gini coefficient of a list of non-negative counts (0 = uniform).

    Used to quantify how skewed the label frequency distribution is; real
    graph datasets typically have a high label Gini while uniformly labeled
    synthetic graphs sit near zero.
    """
    if not values:
        return 0.0
    sorted_values = sorted(values)
    total = sum(sorted_values)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for index, value in enumerate(sorted_values, start=1):
        cumulative += value
        weighted += index * value
    count = len(sorted_values)
    return (2.0 * weighted) / (count * total) - (count + 1.0) / count


def label_frequency_skew(graph: LabeledDiGraph) -> float:
    """Ratio of the most to the least frequent label's edge count.

    Returns ``1.0`` for graphs with at most one label and ``inf`` when some
    label has zero edges (which cannot happen for labels reported by
    :meth:`LabeledDiGraph.labels`).
    """
    counts = list(graph.label_edge_counts().values())
    if len(counts) <= 1:
        return 1.0
    lowest = min(counts)
    highest = max(counts)
    if lowest == 0:
        return math.inf
    return highest / lowest


def summarize_graph(graph: LabeledDiGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    out_degrees = [graph.out_degree(v) for v in graph.vertices()]
    in_degrees = [graph.in_degree(v) for v in graph.vertices()]
    vertex_count = graph.vertex_count
    label_counts = graph.label_edge_counts()
    return GraphSummary(
        name=graph.name or "unnamed",
        label_count=graph.label_count,
        vertex_count=vertex_count,
        edge_count=graph.edge_count,
        label_edge_counts=label_counts,
        mean_out_degree=(sum(out_degrees) / vertex_count) if vertex_count else 0.0,
        max_out_degree=max(out_degrees, default=0),
        mean_in_degree=(sum(in_degrees) / vertex_count) if vertex_count else 0.0,
        max_in_degree=max(in_degrees, default=0),
        label_gini=gini_coefficient(list(label_counts.values())),
    )
