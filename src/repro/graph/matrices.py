"""Per-label boolean adjacency matrices.

Label-path evaluation reduces to boolean sparse matrix products: the pairs
connected by the path ``l1/l2/.../lk`` are exactly the non-zeros of
``M(l1) · M(l2) · ... · M(lk)`` where ``M(l)`` is the boolean adjacency matrix
of label ``l``.  :class:`LabelMatrixStore` materialises and caches those
per-label matrices (scipy CSR, boolean) for a fixed graph so the evaluator
and the catalog builder can share them.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
from scipy import sparse

from repro.exceptions import UnknownLabelError
from repro.graph.digraph import LabeledDiGraph

__all__ = ["LabelMatrixStore", "drop_zero_rows", "block_nonzero_counts"]


def drop_zero_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Return ``matrix`` restricted to its rows with at least one stored entry.

    A zero row of a boolean reachability block stays zero under any further
    right-multiplication, and the path counts the matrix-chain builder emits
    are row-position independent (each count is a block's total nnz), so
    dropping empty rows between levels is loss-free.  It is also the main
    reason stacked frontiers stay small: dead source vertices stop paying
    for ``indptr`` space in every later product.  Returns ``matrix`` itself
    (no copy) when every row is nonzero.
    """
    row_counts = np.diff(matrix.indptr)
    keep = np.nonzero(row_counts)[0]
    if keep.size == matrix.shape[0]:
        return matrix
    return matrix[keep]


def block_nonzero_counts(
    matrix: sparse.csr_matrix, block_ptr: np.ndarray
) -> np.ndarray:
    """Per-block stored-entry counts of a vertically stacked CSR matrix.

    ``block_ptr`` delimits the stacked blocks as row offsets
    (``block_ptr[b]:block_ptr[b + 1]`` is block ``b``); the count of block
    ``b`` is then a difference of two ``indptr`` entries, so the whole
    reduction is one fancy-index plus one :func:`numpy.diff` — no per-block
    Python loop.  For boolean products this count *is* the path selectivity
    of the prefix the block represents.
    """
    return np.diff(matrix.indptr[block_ptr]).astype(np.int64)


class LabelMatrixStore:
    """Boolean adjacency matrices of a :class:`LabeledDiGraph`, one per label.

    The store snapshots the graph at construction time: later mutations of the
    graph are not reflected.  Matrices are built lazily on first access and
    cached.

    Parameters
    ----------
    graph:
        The graph to snapshot.
    labels:
        Optional restriction of the label set; defaults to all labels present
        in the graph.
    """

    def __init__(
        self, graph: LabeledDiGraph, labels: Optional[Iterable[str]] = None
    ) -> None:
        self._graph = graph
        self._dimension = graph.vertex_count
        self._labels = tuple(sorted(labels) if labels is not None else graph.labels())
        self._matrices: dict[str, sparse.csr_matrix] = {}

    @property
    def dimension(self) -> int:
        """The matrix dimension ``|V|``."""
        return self._dimension

    @property
    def labels(self) -> tuple[str, ...]:
        """The labels the store covers (sorted)."""
        return self._labels

    def matrix(self, label: str) -> sparse.csr_matrix:
        """The boolean CSR adjacency matrix of ``label``.

        Row ``i`` / column ``j`` correspond to the graph's dense vertex ids;
        entry ``(i, j)`` is ``True`` iff an edge ``(v_i, label, v_j)`` exists.
        """
        if label not in self._labels:
            raise UnknownLabelError(label)
        cached = self._matrices.get(label)
        if cached is not None:
            return cached
        rows, cols = self._graph.edge_index_arrays(label)
        data = np.ones(rows.size, dtype=bool)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(self._dimension, self._dimension), dtype=bool
        )
        self._matrices[label] = matrix
        return matrix

    def as_dict(
        self, labels: Optional[Iterable[str]] = None
    ) -> dict[str, sparse.csr_matrix]:
        """Materialise the matrices for ``labels`` (default: all) as a dict.

        The catalog builders take a plain ``label -> matrix`` mapping so the
        hot loops never touch the store's cache logic; this is the one-call
        way to produce it with every matrix built exactly once.
        """
        selected = self._labels if labels is None else tuple(labels)
        return {label: self.matrix(label) for label in selected}

    def path_matrix(self, labels: Iterable[str]) -> sparse.csr_matrix:
        """Boolean product ``M(l1)·...·M(lk)`` for the label sequence ``labels``.

        The result's non-zeros are exactly the vertex pairs returned by the
        path query.  An empty label sequence yields the identity matrix
        (every vertex is connected to itself by the empty path).
        """
        product: Optional[sparse.csr_matrix] = None
        for label in labels:
            current = self.matrix(label)
            if product is None:
                product = current.copy()
            else:
                product = (product @ current).astype(bool)
        if product is None:
            return sparse.identity(self._dimension, dtype=bool, format="csr")
        return product.astype(bool)

    def path_selectivity(self, labels: Iterable[str]) -> int:
        """Number of distinct vertex pairs connected by the label sequence."""
        return int(self.path_matrix(labels).nnz)

    def extend(
        self, prefix_matrix: sparse.csr_matrix, label: str
    ) -> sparse.csr_matrix:
        """Extend a prefix product by one more label (``prefix · M(label)``)."""
        return (prefix_matrix @ self.matrix(label)).astype(bool)

    def identity(self) -> sparse.csr_matrix:
        """The ``|V|×|V|`` boolean identity matrix (empty-path product)."""
        return sparse.identity(self._dimension, dtype=bool, format="csr")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<LabelMatrixStore dim={self._dimension} labels={len(self._labels)} "
            f"cached={len(self._matrices)}>"
        )
