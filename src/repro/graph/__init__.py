"""Graph substrate: storage, IO, generation, matrices and statistics."""

from repro.graph.digraph import Edge, LabeledDiGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    correlated_label_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    zipf_labeled_graph,
)
from repro.graph.io import (
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)
from repro.graph.matrices import LabelMatrixStore
from repro.graph.schema import GraphSchema, LabelSpec, generate_from_schema
from repro.graph.statistics import GraphSummary, summarize_graph

__all__ = [
    "Edge",
    "LabeledDiGraph",
    "LabelMatrixStore",
    "GraphSchema",
    "LabelSpec",
    "GraphSummary",
    "barabasi_albert_graph",
    "correlated_label_graph",
    "erdos_renyi_graph",
    "forest_fire_graph",
    "generate_from_schema",
    "read_edge_list",
    "read_json_graph",
    "summarize_graph",
    "write_edge_list",
    "write_json_graph",
    "zipf_labeled_graph",
]
