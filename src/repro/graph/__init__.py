"""Graph substrate: storage, IO, generation, deltas, matrices and statistics."""

from repro.graph.delta import (
    GraphDelta,
    affected_first_labels,
    read_delta,
    write_delta,
)
from repro.graph.digraph import Edge, LabeledDiGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    correlated_label_graph,
    erdos_renyi_graph,
    forest_fire_graph,
    ring_labeled_graph,
    zipf_labeled_graph,
)
from repro.graph.io import (
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)
from repro.graph.matrices import LabelMatrixStore
from repro.graph.schema import GraphSchema, LabelSpec, generate_from_schema
from repro.graph.statistics import GraphSummary, summarize_graph

__all__ = [
    "Edge",
    "GraphDelta",
    "LabeledDiGraph",
    "LabelMatrixStore",
    "GraphSchema",
    "LabelSpec",
    "GraphSummary",
    "affected_first_labels",
    "barabasi_albert_graph",
    "correlated_label_graph",
    "erdos_renyi_graph",
    "forest_fire_graph",
    "generate_from_schema",
    "read_delta",
    "read_edge_list",
    "read_json_graph",
    "ring_labeled_graph",
    "summarize_graph",
    "write_delta",
    "write_edge_list",
    "write_json_graph",
    "zipf_labeled_graph",
]
