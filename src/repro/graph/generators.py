"""Random graph generators used to build the experimental datasets.

The paper evaluates on two real datasets (Moreno Health, a DBpedia subgraph)
and two synthetic ones generated with the SNAP library (Erdős–Rényi and
Forest-Fire).  Real data cannot be shipped with this reproduction, so the
generators here produce graphs with the same *statistical structure*:

* :func:`erdos_renyi_graph` / :func:`forest_fire_graph` — the same generative
  models as the paper's SNAP-ER / SNAP-FF graphs, with uniformly random edge
  labels.
* :func:`zipf_labeled_graph` — random topology with Zipf-skewed label
  frequencies, the dominant feature of real edge-label distributions.
* :func:`correlated_label_graph` — the stand-in for the real datasets: label
  frequencies are skewed *and* the label chosen for an edge depends on the
  labels already incident to its source vertex, which induces the
  "edge-label cardinality correlations" the paper observes in real data.

All generators accept a ``seed`` and are fully deterministic for a given
seed, which the experiment harness relies on.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import networkx as nx

from repro.exceptions import GraphError
from repro.graph.digraph import LabeledDiGraph

__all__ = [
    "default_labels",
    "erdos_renyi_graph",
    "forest_fire_graph",
    "barabasi_albert_graph",
    "ring_labeled_graph",
    "zipf_labeled_graph",
    "correlated_label_graph",
]


def default_labels(label_count: int) -> list[str]:
    """Return the canonical label alphabet ``["1", "2", ..., str(n)]``.

    The paper names labels ``1..|L|`` (see Figure 1), so the reproduction
    follows the same convention by default.
    """
    if label_count < 1:
        raise GraphError("label_count must be >= 1")
    return [str(i) for i in range(1, label_count + 1)]


def _zipf_weights(count: int, skew: float) -> list[float]:
    """Zipf-like weights ``1/r^skew`` for ranks ``r = 1..count`` (unnormalised)."""
    return [1.0 / (rank**skew) for rank in range(1, count + 1)]


def _label_edges(
    pairs: Sequence[tuple[int, int]],
    labels: Sequence[str],
    rng: random.Random,
    *,
    skew: float = 0.0,
) -> list[tuple[int, str, int]]:
    """Assign a label to every vertex pair.

    With ``skew == 0`` labels are uniform; otherwise label ``i`` is drawn with
    probability proportional to ``1 / i**skew``.
    """
    if skew > 0:
        weights = _zipf_weights(len(labels), skew)
        chosen = rng.choices(labels, weights=weights, k=len(pairs))
    else:
        chosen = [rng.choice(labels) for _ in pairs]
    return [(src, lab, dst) for (src, dst), lab in zip(pairs, chosen)]


def erdos_renyi_graph(
    vertex_count: int,
    edge_count: int,
    label_count: int,
    *,
    labels: Optional[Sequence[str]] = None,
    label_skew: float = 0.0,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> LabeledDiGraph:
    """Labeled Erdős–Rényi ``G(n, m)`` digraph (the paper's SNAP-ER stand-in).

    ``edge_count`` directed vertex pairs are sampled uniformly at random
    without replacement (self-loops allowed, parallel identical triples not),
    and each receives a label drawn uniformly (or Zipf-skewed when
    ``label_skew > 0``) from the alphabet.
    """
    if vertex_count < 1:
        raise GraphError("vertex_count must be >= 1")
    if edge_count < 0:
        raise GraphError("edge_count must be >= 0")
    rng = random.Random(seed)
    label_alphabet = list(labels) if labels is not None else default_labels(label_count)
    pairs: set[tuple[int, int]] = set()
    max_pairs = vertex_count * vertex_count
    target = min(edge_count, max_pairs)
    while len(pairs) < target:
        pairs.add((rng.randrange(vertex_count), rng.randrange(vertex_count)))
    graph = LabeledDiGraph(name=name)
    graph.add_vertices_from(range(vertex_count))
    graph.add_edges_from(
        _label_edges(sorted(pairs), label_alphabet, rng, skew=label_skew)
    )
    return graph


def forest_fire_graph(
    vertex_count: int,
    label_count: int,
    *,
    forward_probability: float = 0.37,
    backward_probability: float = 0.32,
    labels: Optional[Sequence[str]] = None,
    label_skew: float = 0.0,
    seed: int = 0,
    name: str = "forest-fire",
) -> LabeledDiGraph:
    """Labeled Forest-Fire graph (the paper's SNAP-FF stand-in).

    A simplified Leskovec-style forest-fire process: each new vertex picks an
    ambassador and "burns" through its out- and in-neighbourhood with
    geometric fan-out governed by ``forward_probability`` and
    ``backward_probability``.  Every burned vertex receives one edge from the
    new vertex.  Labels are then assigned as in :func:`erdos_renyi_graph`.
    """
    if vertex_count < 1:
        raise GraphError("vertex_count must be >= 1")
    if not (0.0 <= forward_probability < 1.0):
        raise GraphError("forward_probability must be in [0, 1)")
    if not (0.0 <= backward_probability < 1.0):
        raise GraphError("backward_probability must be in [0, 1)")
    rng = random.Random(seed)
    label_alphabet = list(labels) if labels is not None else default_labels(label_count)

    out_neighbours: list[list[int]] = [[] for _ in range(vertex_count)]
    in_neighbours: list[list[int]] = [[] for _ in range(vertex_count)]
    pairs: list[tuple[int, int]] = []

    def geometric(p: float) -> int:
        """Number of successes before first failure for probability ``p``."""
        count = 0
        while p > 0 and rng.random() < p:
            count += 1
        return count

    for new_vertex in range(1, vertex_count):
        ambassador = rng.randrange(new_vertex)
        visited: set[int] = set()
        frontier = [ambassador]
        while frontier:
            current = frontier.pop()
            if current in visited:
                continue
            visited.add(current)
            pairs.append((new_vertex, current))
            out_neighbours[new_vertex].append(current)
            in_neighbours[current].append(new_vertex)
            forward_burn = geometric(forward_probability)
            backward_burn = geometric(backward_probability)
            candidates_out = [v for v in out_neighbours[current] if v not in visited]
            candidates_in = [v for v in in_neighbours[current] if v not in visited]
            rng.shuffle(candidates_out)
            rng.shuffle(candidates_in)
            frontier.extend(candidates_out[:forward_burn])
            frontier.extend(candidates_in[:backward_burn])

    graph = LabeledDiGraph(name=name)
    graph.add_vertices_from(range(vertex_count))
    graph.add_edges_from(_label_edges(pairs, label_alphabet, rng, skew=label_skew))
    return graph


def barabasi_albert_graph(
    vertex_count: int,
    edges_per_vertex: int,
    label_count: int,
    *,
    labels: Optional[Sequence[str]] = None,
    label_skew: float = 0.0,
    seed: int = 0,
    name: str = "barabasi-albert",
) -> LabeledDiGraph:
    """Labeled preferential-attachment graph built on networkx's BA model.

    Each undirected BA edge is oriented from the newer vertex to the older
    one, matching citation-style real graphs.
    """
    if edges_per_vertex < 1:
        raise GraphError("edges_per_vertex must be >= 1")
    if vertex_count <= edges_per_vertex:
        raise GraphError("vertex_count must exceed edges_per_vertex")
    rng = random.Random(seed)
    label_alphabet = list(labels) if labels is not None else default_labels(label_count)
    ba = nx.barabasi_albert_graph(vertex_count, edges_per_vertex, seed=seed)
    pairs = [(max(u, v), min(u, v)) for u, v in ba.edges()]
    graph = LabeledDiGraph(name=name)
    graph.add_vertices_from(range(vertex_count))
    graph.add_edges_from(_label_edges(pairs, label_alphabet, rng, skew=label_skew))
    return graph


def zipf_labeled_graph(
    vertex_count: int,
    edge_count: int,
    label_count: int,
    *,
    skew: float = 1.0,
    labels: Optional[Sequence[str]] = None,
    seed: int = 0,
    name: str = "zipf-labeled",
) -> LabeledDiGraph:
    """Random topology with Zipf-skewed label frequencies.

    This is the simplest model of a "real" edge-label distribution: a few
    labels are very common, most are rare.  Skew of 1.0 roughly matches the
    Moreno Health label histogram shown in the paper's Figure 1.
    """
    return erdos_renyi_graph(
        vertex_count,
        edge_count,
        label_count,
        labels=labels,
        label_skew=skew,
        seed=seed,
        name=name,
    )


def ring_labeled_graph(
    label_count: int,
    layer_size: int,
    edges_per_label: int,
    *,
    labels: Optional[Sequence[str]] = None,
    seed: int = 0,
    name: str = "ring-labeled",
) -> LabeledDiGraph:
    """A layered ring graph where labels compose only along the schema.

    Vertices form ``label_count`` layers of ``layer_size`` each; the ``i``-th
    label of the alphabet connects layer ``i`` to layer ``(i + 1) mod
    label_count`` with ``edges_per_label`` random edges.  Label ``x`` can
    therefore be followed only by the next label of the ring — the shape of
    schema-constrained data (typed edges that compose only along the schema,
    as in RDF / property graphs), and the workload where the incremental
    update's affected-subtree analysis shines: an edge change on one label
    can affect at most ``k`` of the ``label_count`` first-label subtrees.
    """
    if label_count < 2:
        raise GraphError("label_count must be >= 2")
    if layer_size < 1:
        raise GraphError("layer_size must be >= 1")
    if edges_per_label < 0:
        raise GraphError("edges_per_label must be >= 0")
    rng = random.Random(seed)
    label_alphabet = list(labels) if labels is not None else default_labels(label_count)
    if len(label_alphabet) != label_count:
        raise GraphError(
            f"expected {label_count} labels, got {len(label_alphabet)}"
        )
    graph = LabeledDiGraph(name=name)
    graph.add_vertices_from(range(label_count * layer_size))
    max_pairs = layer_size * layer_size
    for layer, label in enumerate(label_alphabet):
        source_base = layer * layer_size
        target_base = ((layer + 1) % label_count) * layer_size
        pairs: set[tuple[int, int]] = set()
        target_count = min(edges_per_label, max_pairs)
        while len(pairs) < target_count:
            pairs.add((rng.randrange(layer_size), rng.randrange(layer_size)))
        graph.add_edges_from(
            (source_base + source, label, target_base + target)
            for source, target in sorted(pairs)
        )
    return graph


def correlated_label_graph(
    vertex_count: int,
    edge_count: int,
    label_count: int,
    *,
    skew: float = 1.0,
    correlation: float = 0.6,
    labels: Optional[Sequence[str]] = None,
    seed: int = 0,
    name: str = "correlated-labels",
) -> LabeledDiGraph:
    """Stand-in for the paper's real datasets (Moreno Health, DBpedia).

    Label frequencies follow a Zipf distribution with exponent ``skew``, and
    with probability ``correlation`` an edge re-uses a label already incident
    to its source vertex instead of sampling a fresh one.  This produces the
    *edge-label cardinality correlations* that the paper credits for the
    smaller (but still present) advantage of sum-based ordering on real data:
    paths whose constituent labels are frequent also tend to be frequent.

    Parameters
    ----------
    correlation:
        Probability in ``[0, 1]`` of copying a label from an existing incident
        edge of the source vertex.  ``0`` degenerates to
        :func:`zipf_labeled_graph`.
    """
    if not (0.0 <= correlation <= 1.0):
        raise GraphError("correlation must be in [0, 1]")
    rng = random.Random(seed)
    label_alphabet = list(labels) if labels is not None else default_labels(label_count)
    weights = _zipf_weights(len(label_alphabet), skew)

    pairs: set[tuple[int, int]] = set()
    max_pairs = vertex_count * vertex_count
    target = min(edge_count, max_pairs)
    while len(pairs) < target:
        pairs.add((rng.randrange(vertex_count), rng.randrange(vertex_count)))

    # Process pairs grouped by source so the "copy an incident label" rule has
    # something to copy from; a hub vertex therefore tends to emit one or two
    # dominant labels, exactly the correlation structure seen in real graphs.
    incident_labels: dict[int, list[str]] = {}
    triples: list[tuple[int, str, int]] = []
    for source, target_vertex in sorted(pairs):
        existing = incident_labels.get(source)
        if existing and rng.random() < correlation:
            label = rng.choice(existing)
        else:
            label = rng.choices(label_alphabet, weights=weights, k=1)[0]
        incident_labels.setdefault(source, []).append(label)
        incident_labels.setdefault(target_vertex, []).append(label)
        triples.append((source, label, target_vertex))

    graph = LabeledDiGraph(name=name)
    graph.add_vertices_from(range(vertex_count))
    graph.add_edges_from(triples)
    return graph
