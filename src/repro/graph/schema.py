"""Schema-driven graph generation (gMark-style).

The paper cites gMark [Bagan et al., TKDE 2017] as the state of the art in
schema-driven generation of graphs and queries.  This module implements a
small, self-contained subset of that idea sufficient for the reproduction:
a :class:`GraphSchema` describes, per edge label, how many edges carry the
label and how its out-degrees are distributed (uniform, Zipf or constant),
and :func:`generate_from_schema` samples a graph matching the schema.

The dataset stand-ins in :mod:`repro.datasets` use schemas fitted to the
Table 3 statistics of the paper's real datasets so that the label-frequency
skew and label-cardinality correlations the paper relies on are present.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import GraphError
from repro.graph.digraph import LabeledDiGraph

__all__ = ["LabelSpec", "GraphSchema", "generate_from_schema"]

_DEGREE_DISTRIBUTIONS = ("uniform", "zipf", "constant")


@dataclass(frozen=True)
class LabelSpec:
    """Generation parameters of a single edge label.

    Attributes
    ----------
    label:
        The label string.
    edge_count:
        Number of edges that should carry this label.
    out_degree_distribution:
        ``"uniform"``, ``"zipf"`` or ``"constant"`` — how the label's edges
        are spread over source vertices.  ``"zipf"`` concentrates the label on
        a few hub sources, the common pattern in knowledge-graph predicates.
    zipf_exponent:
        Skew parameter for the ``"zipf"`` distribution (ignored otherwise).
    source_fraction / target_fraction:
        Fractions of the vertex universe eligible as sources / targets for
        this label, modelling typed endpoints (e.g. only "person" vertices
        have a "knows" edge).
    """

    label: str
    edge_count: int
    out_degree_distribution: str = "uniform"
    zipf_exponent: float = 1.2
    source_fraction: float = 1.0
    target_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.edge_count < 0:
            raise GraphError(f"label {self.label!r}: edge_count must be >= 0")
        if self.out_degree_distribution not in _DEGREE_DISTRIBUTIONS:
            raise GraphError(
                f"label {self.label!r}: unknown degree distribution "
                f"{self.out_degree_distribution!r}; expected one of "
                f"{_DEGREE_DISTRIBUTIONS}"
            )
        if not (0.0 < self.source_fraction <= 1.0):
            raise GraphError(f"label {self.label!r}: source_fraction must be in (0, 1]")
        if not (0.0 < self.target_fraction <= 1.0):
            raise GraphError(f"label {self.label!r}: target_fraction must be in (0, 1]")


@dataclass(frozen=True)
class GraphSchema:
    """A complete generation schema: vertex universe + per-label specs."""

    vertex_count: int
    labels: tuple[LabelSpec, ...] = field(default_factory=tuple)
    name: str = "schema-graph"

    def __post_init__(self) -> None:
        if self.vertex_count < 1:
            raise GraphError("vertex_count must be >= 1")
        seen: set[str] = set()
        for spec in self.labels:
            if spec.label in seen:
                raise GraphError(f"duplicate label in schema: {spec.label!r}")
            seen.add(spec.label)

    @property
    def total_edges(self) -> int:
        """Total number of edges the schema will produce."""
        return sum(spec.edge_count for spec in self.labels)

    @property
    def label_names(self) -> tuple[str, ...]:
        """The labels of the schema, in declaration order."""
        return tuple(spec.label for spec in self.labels)

    @classmethod
    def from_label_counts(
        cls,
        vertex_count: int,
        label_counts: dict[str, int],
        *,
        name: str = "schema-graph",
        out_degree_distribution: str = "zipf",
        zipf_exponent: float = 1.2,
    ) -> "GraphSchema":
        """Build a schema directly from a ``label -> edge_count`` mapping."""
        specs = tuple(
            LabelSpec(
                label=label,
                edge_count=count,
                out_degree_distribution=out_degree_distribution,
                zipf_exponent=zipf_exponent,
            )
            for label, count in sorted(label_counts.items())
        )
        return cls(vertex_count=vertex_count, labels=specs, name=name)


def _sample_sources(
    spec: LabelSpec, eligible: Sequence[int], rng: random.Random
) -> list[int]:
    """Sample a source vertex for each edge of ``spec`` from ``eligible``."""
    if spec.out_degree_distribution == "uniform":
        return [rng.choice(eligible) for _ in range(spec.edge_count)]
    if spec.out_degree_distribution == "constant":
        # Round-robin: every eligible source gets (almost) the same out-degree.
        return [eligible[i % len(eligible)] for i in range(spec.edge_count)]
    # Zipf: vertex at rank r is chosen with weight 1/r^s.
    weights = [1.0 / ((rank + 1) ** spec.zipf_exponent) for rank in range(len(eligible))]
    return rng.choices(eligible, weights=weights, k=spec.edge_count)


def generate_from_schema(
    schema: GraphSchema, *, seed: int = 0, max_attempts_factor: int = 10
) -> LabeledDiGraph:
    """Sample a :class:`LabeledDiGraph` matching ``schema``.

    Each label contributes ``edge_count`` distinct ``(source, label, target)``
    triples.  Because edges are simple, a dense schema may need several
    attempts per edge to find an unused pair; generation gives up on a label
    after ``edge_count * max_attempts_factor`` failed attempts, which only
    happens when the requested count approaches the number of possible pairs.
    """
    rng = random.Random(seed)
    graph = LabeledDiGraph(name=schema.name)
    graph.add_vertices_from(range(schema.vertex_count))
    universe = list(range(schema.vertex_count))
    for spec in schema.labels:
        source_pool = universe[: max(1, int(round(spec.source_fraction * schema.vertex_count)))]
        target_pool_size = max(1, int(round(spec.target_fraction * schema.vertex_count)))
        # Draw targets from the *end* of the universe so that source and target
        # pools differ when fractions are small (typed endpoints).
        target_pool = universe[schema.vertex_count - target_pool_size:]
        sources = _sample_sources(spec, source_pool, rng)
        added = 0
        attempts = 0
        limit = max(1, spec.edge_count * max_attempts_factor)
        index = 0
        while added < spec.edge_count and attempts < limit:
            attempts += 1
            if index < len(sources):
                source = sources[index]
                index += 1
            else:
                source = rng.choice(source_pool)
            target = rng.choice(target_pool)
            if graph.add_edge(source, spec.label, target):
                added += 1
    return graph
