"""Graph deltas: batched edge additions/removals with affected-label analysis.

A :class:`GraphDelta` is an immutable batch of edge additions and removals —
the unit of change the incremental-update pipeline consumes.  Today every
catalog build is a cold full pass over the graph, so any edge churn forces an
``O(|L|^k)`` rebuild; a delta carries exactly the information needed to do
better:

* :meth:`GraphDelta.apply` mutates a graph into its post-delta state (and
  :meth:`GraphDelta.reversed` undoes it);
* :func:`affected_first_labels` is the **affected-subtree analysis**: a
  conservative, cheap (``O(|L|²)`` set intersections) answer to *which
  first-label subtrees of the path trie can possibly change* — the slices
  :func:`~repro.paths.enumeration.update_selectivity_vector` recomputes while
  copying every other slice from the old frequency vector.

The analysis rests on label composition: the selectivity of a path depends
only on the matrices of the labels it contains, and a path containing a
changed label can only have a non-zero count (before or after the delta) if
its label sequence is *composable* — every consecutive label pair ``(x, y)``
shares at least one vertex with an incoming ``x`` edge and an outgoing ``y``
edge.  A first-label subtree is therefore affected only if a composable walk
of at most ``k - 1`` hops leads from its root label to a changed label (or
the root label changed itself).  On schema-structured graphs — typed edges
that compose only along the schema, the common shape of RDF / property-graph
data — that walk set is small and most subtrees are provably untouched.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, TextIO, Union

from repro.exceptions import GraphError, GraphIOError
from repro.graph.digraph import Edge, LabeledDiGraph

__all__ = [
    "GraphDelta",
    "affected_first_labels",
    "read_delta",
    "write_delta",
]

PathLike = Union[str, Path]
Triple = tuple[object, str, object]


def _as_edges(triples: Iterable[Sequence[object]], kind: str) -> tuple[Edge, ...]:
    """Normalise an iterable of ``(source, label, target)`` into unique Edges."""
    edges: dict[Edge, None] = {}
    for triple in triples:
        # Explicit shape check: untrusted input (the HTTP body) must fail
        # with GraphError, never TypeError, and a 3-character string is not
        # a triple.
        if not isinstance(triple, (list, tuple)) or len(triple) != 3:
            raise GraphError(
                f"{kind} entries must be (source, label, target) triples, "
                f"got {triple!r}"
            )
        source, label, target = triple
        if not isinstance(label, str):
            raise GraphError(
                f"edge labels must be strings, got {type(label).__name__}"
            )
        try:
            edges[Edge(source, label, target)] = None
        except TypeError as exc:  # unhashable vertex (e.g. a nested list)
            raise GraphError(
                f"{kind} entry has unhashable vertices: {triple!r}"
            ) from exc
    return tuple(edges)


class GraphDelta:
    """An immutable batch of edge additions and removals.

    Parameters
    ----------
    additions / removals:
        Iterables of ``(source, label, target)`` triples.  Duplicates are
        collapsed; a triple appearing on *both* sides is rejected (the net
        effect would depend on application order, which a set-shaped delta
        cannot express).
    """

    __slots__ = ("_additions", "_removals", "_labels")

    def __init__(
        self,
        additions: Iterable[Sequence[object]] = (),
        removals: Iterable[Sequence[object]] = (),
    ) -> None:
        self._additions = _as_edges(additions, "additions")
        self._removals = _as_edges(removals, "removals")
        overlap = set(self._additions) & set(self._removals)
        if overlap:
            example = next(iter(overlap))
            raise GraphError(
                f"delta adds and removes the same edge "
                f"({len(overlap)} overlapping, e.g. {tuple(example)!r})"
            )
        self._labels = frozenset(
            edge.label for edge in self._additions + self._removals
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def additions(self) -> tuple[Edge, ...]:
        """The edges the delta inserts."""
        return self._additions

    @property
    def removals(self) -> tuple[Edge, ...]:
        """The edges the delta deletes."""
        return self._removals

    def labels(self) -> frozenset[str]:
        """Every label touched by the delta (the changed-label set ``S``)."""
        return self._labels

    def __len__(self) -> int:
        return len(self._additions) + len(self._removals)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDelta):
            return NotImplemented
        return (
            set(self._additions) == set(other._additions)
            and set(self._removals) == set(other._removals)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._additions), frozenset(self._removals)))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<GraphDelta +{len(self._additions)} -{len(self._removals)} "
            f"labels={sorted(self._labels)}>"
        )

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, graph: LabeledDiGraph, *, strict: bool = False) -> tuple[int, int]:
        """Mutate ``graph`` into its post-delta state.

        Removals run first so an edge moved between labels round-trips
        cleanly.  Returns ``(added, removed)`` — the counts of edges that
        actually changed.  With ``strict=True`` an addition that already
        exists or a removal that does not raises :class:`GraphError`
        (useful when the delta is supposed to describe real churn);
        otherwise such entries are no-ops, which keeps ``apply`` idempotent.
        """
        removed = 0
        for edge in self._removals:
            if graph.remove_edge(edge.source, edge.label, edge.target):
                removed += 1
            elif strict:
                raise GraphError(f"removal of missing edge {tuple(edge)!r}")
        added = 0
        for edge in self._additions:
            if graph.add_edge(edge.source, edge.label, edge.target):
                added += 1
            elif strict:
                raise GraphError(f"addition of existing edge {tuple(edge)!r}")
        return added, removed

    def reversed(self) -> "GraphDelta":
        """The inverse delta (applying both is a no-op on any graph)."""
        return GraphDelta(additions=self._removals, removals=self._additions)

    # ------------------------------------------------------------------
    # interchange
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, list[list[object]]]:
        """A JSON-shaped document (``{"add": [...], "remove": [...]}``)."""
        return {
            "add": [[edge.source, edge.label, edge.target] for edge in self._additions],
            "remove": [
                [edge.source, edge.label, edge.target] for edge in self._removals
            ],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_dict` output (or an HTTP body)."""
        additions = document.get("add", [])
        removals = document.get("remove", [])
        for name, value in (("add", additions), ("remove", removals)):
            if not isinstance(value, (list, tuple)):
                raise GraphError(f'delta field "{name}" must be a list of triples')
        return cls(additions=additions, removals=removals)  # type: ignore[arg-type]


def affected_first_labels(
    graph: LabeledDiGraph,
    delta: GraphDelta,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
) -> tuple[str, ...]:
    """First labels whose path-trie subtree may change under ``delta``.

    ``graph`` must be the **post-delta** graph.  The answer is conservative
    (a superset of the truly changed subtrees) but sound: every first label
    *not* returned roots a subtree whose selectivity slice is byte-identical
    before and after the delta.

    Soundness argument: a path's selectivity changes only if the path
    contains a changed label, and such a path has a non-zero count (old or
    new) only if its prefix up to the first changed label is composable —
    i.e. there is a walk ``a → x₁ → ... → s`` of at most ``k - 1`` hops in
    the label-follows relation ``F`` (``F(x, y)`` iff some vertex has an
    incoming ``x`` edge and an outgoing ``y`` edge), where only the final
    hop lands on a changed label.  Hops between unchanged labels have
    identical ``F`` entries before and after the delta; for the final hop
    the old source support of a changed label is covered by its new support
    plus the sources of its removed edges.  A bounded reverse BFS from the
    changed set over that union relation therefore reaches every possibly
    affected root.
    """
    alphabet = tuple(sorted(labels)) if labels is not None else tuple(graph.labels())
    if max_length < 1:
        raise GraphError("max_length must be >= 1")
    alphabet_set = set(alphabet)
    changed = delta.labels() & alphabet_set
    # A delta label outside the alphabet that is *present in the graph* is a
    # genuine domain mismatch (the canonical index space does not cover it).
    # One that is absent from the graph too can only come from a no-op
    # removal — it contributes to no path count before or after, so it is
    # ignored rather than poisoning an update whose graph was already
    # mutated.
    unknown = sorted(
        label
        for label in delta.labels() - alphabet_set
        if graph.has_label(label)
    )
    if unknown:
        raise GraphError(
            f"delta touches labels outside the alphabet: {', '.join(unknown)}"
        )
    if not changed:
        return ()

    def sources_of(label: str) -> frozenset[object]:
        """Source vertices of ``label`` edges on the new graph."""
        if not graph.has_label(label):
            return frozenset()
        return frozenset(graph.forward_adjacency(label))

    def targets_of(label: str) -> frozenset[object]:
        """Target vertices of ``label`` edges on the new graph."""
        if not graph.has_label(label):
            return frozenset()
        return frozenset(graph.backward_adjacency(label))

    # Source supports on the new graph; for changed labels, widened by the
    # removed edges' sources so the relation covers the old graph too.
    sources: dict[str, frozenset[object]] = {x: sources_of(x) for x in alphabet}
    widened: dict[str, frozenset[object]] = dict(sources)
    for edge in delta.removals:
        if edge.label in widened:
            widened[edge.label] = widened[edge.label] | {edge.source}
    targets = {x: targets_of(x) for x in alphabet}

    affected = set(changed)
    frontier = set(changed)
    for _ in range(max_length - 1):
        reachable_supports = [
            widened[y] if y in changed else sources[y] for y in frontier
        ]
        frontier = {
            x
            for x in alphabet
            if x not in affected
            and any(targets[x] & support for support in reachable_supports)
        }
        if not frontier:
            break
        affected |= frontier
    return tuple(label for label in alphabet if label in affected)


# ----------------------------------------------------------------------
# delta files (the CLI's interchange form)
# ----------------------------------------------------------------------
def read_delta(
    source: Union[PathLike, TextIO],
    *,
    separator: Optional[str] = None,
    comment: str = "#",
) -> GraphDelta:
    """Read a delta from a text file.

    Each non-empty, non-comment line is ``OP source label target`` where
    ``OP`` is ``+`` (addition) or ``-`` (removal); fields split on
    ``separator`` (``None`` = any whitespace), matching the edge-list format
    with one leading operation column.
    """
    if hasattr(source, "read"):
        handle, should_close = source, False
    else:
        handle, should_close = open(Path(source), "r", encoding="utf-8"), True
    additions: list[Triple] = []
    removals: list[Triple] = []
    try:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith(comment):
                continue
            fields = line.split(separator)
            if len(fields) != 4 or fields[0] not in ("+", "-"):
                raise GraphIOError(
                    f"line {line_number}: expected '+|- source label target', "
                    f"got {line!r}"
                )
            operation, source_vertex, label, target_vertex = fields
            triple = (source_vertex, label, target_vertex)
            (additions if operation == "+" else removals).append(triple)
    finally:
        if should_close:
            handle.close()
    try:
        return GraphDelta(additions=additions, removals=removals)
    except GraphError as exc:
        raise GraphIOError(f"invalid delta file: {exc}") from exc


def write_delta(
    delta: GraphDelta,
    target: Union[PathLike, TextIO],
    *,
    separator: str = "\t",
) -> None:
    """Write ``delta`` in the format :func:`read_delta` reads."""
    if hasattr(target, "write"):
        handle, should_close = target, False
    else:
        handle, should_close = open(Path(target), "w", encoding="utf-8"), True
    try:
        for operation, edges in (("+", delta.additions), ("-", delta.removals)):
            for edge in edges:
                handle.write(
                    separator.join(
                        (operation, str(edge.source), edge.label, str(edge.target))
                    )
                    + "\n"
                )
    finally:
        if should_close:
            handle.close()
