"""Edge-labeled directed multigraph storage.

This module provides :class:`LabeledDiGraph`, the storage substrate on which
the whole reproduction is built.  It models the paper's data model directly:
a graph ``G`` is a finite set of vertices ``V``, a finite set of edge labels
``L`` and a set of directed labeled edges ``E ⊆ V × L × V``.

The structure is optimised for the access patterns of label-path evaluation:

* per-label forward adjacency (``successors(v, label)``)
* per-label backward adjacency (``predecessors(v, label)``)
* per-label edge sets (``edges_with_label(label)``)

Vertices may be arbitrary hashable objects; internally they are interned to
dense integer identifiers so that the sparse-matrix evaluation layer
(:mod:`repro.graph.matrices`) can build CSR matrices without re-hashing.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

import numpy as np

from repro.exceptions import GraphError, UnknownLabelError, UnknownVertexError

__all__ = ["Edge", "LabeledDiGraph"]

Vertex = Hashable
Label = str


class Edge(tuple):
    """A directed labeled edge ``(source, label, target)``.

    ``Edge`` is a lightweight tuple subclass so that edges hash and compare
    exactly like the plain triples users construct, while still exposing
    named accessors.
    """

    __slots__ = ()

    def __new__(cls, source: Vertex, label: Label, target: Vertex) -> "Edge":
        return super().__new__(cls, (source, label, target))

    @property
    def source(self) -> Vertex:
        """The tail vertex of the edge."""
        return self[0]

    @property
    def label(self) -> Label:
        """The edge label."""
        return self[1]

    @property
    def target(self) -> Vertex:
        """The head vertex of the edge."""
        return self[2]

    def reversed(self) -> "Edge":
        """Return the edge with source and target swapped (label unchanged)."""
        return Edge(self.target, self.label, self.source)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Edge({self.source!r}, {self.label!r}, {self.target!r})"


class LabeledDiGraph:
    """An edge-labeled directed graph ``G = (V, L, E)``.

    The graph is a *simple* labeled digraph in the sense of the paper: at most
    one edge exists for each ``(source, label, target)`` triple, but multiple
    edges with different labels may connect the same vertex pair, and
    self-loops are allowed.

    Parameters
    ----------
    edges:
        Optional iterable of ``(source, label, target)`` triples to insert.
    name:
        Optional human-readable name, carried through IO and dataset
        registries for reporting.
    """

    def __init__(
        self,
        edges: Optional[Iterable[tuple[Vertex, Label, Vertex]]] = None,
        *,
        name: str = "",
    ) -> None:
        self.name = name
        # Vertex interning: vertex object -> dense int id, and the reverse.
        self._vertex_ids: dict[Vertex, int] = {}
        self._vertices: list[Vertex] = []
        # label -> {source -> set(targets)}
        self._forward: dict[Label, dict[Vertex, set[Vertex]]] = {}
        # label -> {target -> set(sources)}
        self._backward: dict[Label, dict[Vertex, set[Vertex]]] = {}
        # label -> number of edges carrying that label
        self._label_edge_counts: dict[Label, int] = {}
        self._edge_count = 0
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> int:
        """Add ``vertex`` (idempotent) and return its dense integer id."""
        existing = self._vertex_ids.get(vertex)
        if existing is not None:
            return existing
        vertex_id = len(self._vertices)
        self._vertex_ids[vertex] = vertex_id
        self._vertices.append(vertex)
        return vertex_id

    def add_vertices_from(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex in ``vertices`` (idempotent)."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, source: Vertex, label: Label, target: Vertex) -> bool:
        """Add the edge ``(source, label, target)``.

        Returns ``True`` if the edge was newly inserted and ``False`` if it
        was already present (the graph stores simple labeled edges).
        """
        if not isinstance(label, str):
            raise GraphError(f"edge labels must be strings, got {type(label).__name__}")
        self.add_vertex(source)
        self.add_vertex(target)
        forward = self._forward.setdefault(label, {})
        targets = forward.setdefault(source, set())
        if target in targets:
            return False
        targets.add(target)
        backward = self._backward.setdefault(label, {})
        backward.setdefault(target, set()).add(source)
        self._label_edge_counts[label] = self._label_edge_counts.get(label, 0) + 1
        self._edge_count += 1
        return True

    def add_edges_from(
        self, edges: Iterable[tuple[Vertex, Label, Vertex]]
    ) -> int:
        """Add every edge in ``edges``; return the number of new edges."""
        added = 0
        for source, label, target in edges:
            if self.add_edge(source, label, target):
                added += 1
        return added

    def remove_edge(self, source: Vertex, label: Label, target: Vertex) -> bool:
        """Remove the edge if present; return whether anything was removed."""
        forward = self._forward.get(label)
        if forward is None:
            return False
        targets = forward.get(source)
        if targets is None or target not in targets:
            return False
        targets.discard(target)
        if not targets:
            del forward[source]
        backward = self._backward[label]
        sources = backward[target]
        sources.discard(source)
        if not sources:
            del backward[target]
        self._label_edge_counts[label] -= 1
        if self._label_edge_counts[label] == 0:
            del self._label_edge_counts[label]
            del self._forward[label]
            del self._backward[label]
        self._edge_count -= 1
        return True

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        """Number of labeled edges ``|E|``."""
        return self._edge_count

    @property
    def label_count(self) -> int:
        """Number of distinct edge labels that appear on at least one edge."""
        return len(self._label_edge_counts)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices in insertion (dense-id) order."""
        return iter(self._vertices)

    def labels(self) -> list[Label]:
        """Return the sorted list of edge labels present in the graph."""
        return sorted(self._label_edge_counts)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as :class:`Edge` triples."""
        for label, forward in self._forward.items():
            for source, targets in forward.items():
                for target in targets:
                    yield Edge(source, label, target)

    def edges_with_label(self, label: Label) -> Iterator[Edge]:
        """Iterate over all edges carrying ``label``."""
        forward = self._forward.get(label)
        if forward is None:
            return
        for source, targets in forward.items():
            for target in targets:
                yield Edge(source, label, target)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return whether ``vertex`` is in the graph."""
        return vertex in self._vertex_ids

    def has_label(self, label: Label) -> bool:
        """Return whether any edge carries ``label``."""
        return label in self._label_edge_counts

    def has_edge(self, source: Vertex, label: Label, target: Vertex) -> bool:
        """Return whether the edge ``(source, label, target)`` exists."""
        forward = self._forward.get(label)
        if forward is None:
            return False
        targets = forward.get(source)
        return targets is not None and target in targets

    def label_edge_count(self, label: Label) -> int:
        """Number of edges carrying ``label`` (0 if the label is unknown)."""
        return self._label_edge_counts.get(label, 0)

    def label_edge_counts(self) -> dict[Label, int]:
        """Mapping from each label to its edge count (a fresh dict)."""
        return dict(self._label_edge_counts)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def successors(self, vertex: Vertex, label: Label) -> frozenset[Vertex]:
        """Vertices reachable from ``vertex`` over a single ``label`` edge."""
        if vertex not in self._vertex_ids:
            raise UnknownVertexError(vertex)
        forward = self._forward.get(label)
        if forward is None:
            return frozenset()
        return frozenset(forward.get(vertex, ()))

    def predecessors(self, vertex: Vertex, label: Label) -> frozenset[Vertex]:
        """Vertices with a single ``label`` edge into ``vertex``."""
        if vertex not in self._vertex_ids:
            raise UnknownVertexError(vertex)
        backward = self._backward.get(label)
        if backward is None:
            return frozenset()
        return frozenset(backward.get(vertex, ()))

    def out_degree(self, vertex: Vertex, label: Optional[Label] = None) -> int:
        """Out-degree of ``vertex`` (restricted to ``label`` when given)."""
        if vertex not in self._vertex_ids:
            raise UnknownVertexError(vertex)
        if label is not None:
            forward = self._forward.get(label, {})
            return len(forward.get(vertex, ()))
        return sum(
            len(forward.get(vertex, ())) for forward in self._forward.values()
        )

    def in_degree(self, vertex: Vertex, label: Optional[Label] = None) -> int:
        """In-degree of ``vertex`` (restricted to ``label`` when given)."""
        if vertex not in self._vertex_ids:
            raise UnknownVertexError(vertex)
        if label is not None:
            backward = self._backward.get(label, {})
            return len(backward.get(vertex, ()))
        return sum(
            len(backward.get(vertex, ())) for backward in self._backward.values()
        )

    def forward_adjacency(self, label: Label) -> Mapping[Vertex, set[Vertex]]:
        """The raw ``source -> targets`` map for ``label``.

        The returned mapping is the live internal structure; callers must not
        mutate it.  Raises :class:`UnknownLabelError` for unknown labels so
        typos surface early in evaluation code.
        """
        forward = self._forward.get(label)
        if forward is None:
            raise UnknownLabelError(label)
        return forward

    def backward_adjacency(self, label: Label) -> Mapping[Vertex, set[Vertex]]:
        """The raw ``target -> sources`` map for ``label`` (do not mutate)."""
        backward = self._backward.get(label)
        if backward is None:
            raise UnknownLabelError(label)
        return backward

    def edge_index_arrays(self, label: Label):
        """The interned ``(source_ids, target_ids)`` arrays of ``label``'s edges.

        Returns two aligned ``int64`` NumPy arrays — entry ``i`` of each is
        the dense vertex id of the ``i``-th edge's endpoint — built in bulk
        from the per-label adjacency (one ``np.repeat`` over the out-degrees
        instead of a Python append per edge).  Unknown labels yield empty
        arrays, matching the (label ∈ store, label ∉ graph) case of the
        matrix layer.
        """
        forward = self._forward.get(label)
        if not forward:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        ids = self._vertex_ids
        source_ids = np.fromiter(
            (ids[source] for source in forward), dtype=np.int64, count=len(forward)
        )
        degrees = np.fromiter(
            (len(targets) for targets in forward.values()),
            dtype=np.int64,
            count=len(forward),
        )
        rows = np.repeat(source_ids, degrees)
        cols = np.fromiter(
            (ids[target] for targets in forward.values() for target in targets),
            dtype=np.int64,
            count=self._label_edge_counts[label],
        )
        return rows, cols

    # ------------------------------------------------------------------
    # vertex interning
    # ------------------------------------------------------------------
    def vertex_id(self, vertex: Vertex) -> int:
        """Dense integer id of ``vertex`` (raises for unknown vertices)."""
        try:
            return self._vertex_ids[vertex]
        except KeyError:
            raise UnknownVertexError(vertex) from None

    def vertex_by_id(self, vertex_id: int) -> Vertex:
        """The vertex object for a dense integer id."""
        try:
            return self._vertices[vertex_id]
        except IndexError:
            raise UnknownVertexError(vertex_id) from None

    # ------------------------------------------------------------------
    # selectivity of single labels
    # ------------------------------------------------------------------
    def label_selectivity(self, label: Label) -> int:
        """Selectivity ``f(l)`` of a single-label path.

        For a single label this is simply the number of distinct
        ``(source, target)`` pairs connected by a ``label`` edge, which equals
        the label's edge count because the graph stores simple labeled edges.
        """
        return self.label_edge_count(label)

    def label_selectivities(self) -> dict[Label, int]:
        """Selectivity of every single-label path, keyed by label."""
        return dict(self._label_edge_counts)

    # ------------------------------------------------------------------
    # conversions & dunder protocol
    # ------------------------------------------------------------------
    def subgraph_with_labels(self, labels: Iterable[Label]) -> "LabeledDiGraph":
        """Return a new graph containing only edges whose label is in ``labels``."""
        wanted = set(labels)
        result = LabeledDiGraph(name=self.name)
        for vertex in self._vertices:
            result.add_vertex(vertex)
        for label in wanted:
            for edge in self.edges_with_label(label):
                result.add_edge(edge.source, edge.label, edge.target)
        return result

    def copy(self) -> "LabeledDiGraph":
        """Return a deep structural copy of the graph."""
        result = LabeledDiGraph(name=self.name)
        for vertex in self._vertices:
            result.add_vertex(vertex)
        result.add_edges_from(self.edges())
        return result

    def to_networkx(self):
        """Convert to a :class:`networkx.MultiDiGraph` with ``label`` edge data."""
        import networkx as nx

        nx_graph = nx.MultiDiGraph(name=self.name)
        nx_graph.add_nodes_from(self._vertices)
        for edge in self.edges():
            nx_graph.add_edge(edge.source, edge.target, label=edge.label)
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph, *, label_key: str = "label") -> "LabeledDiGraph":
        """Build a :class:`LabeledDiGraph` from a networkx (multi)digraph.

        Edges without a ``label_key`` attribute get the label ``"_"``.
        """
        graph = cls(name=str(nx_graph.name or ""))
        graph.add_vertices_from(nx_graph.nodes())
        for source, target, data in nx_graph.edges(data=True):
            label = str(data.get(label_key, "_"))
            graph.add_edge(source, label, target)
        return graph

    def __contains__(self, item: object) -> bool:
        if isinstance(item, tuple) and len(item) == 3:
            return self.has_edge(*item)
        return self.has_vertex(item)

    def __len__(self) -> int:
        return self.vertex_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledDiGraph):
            return NotImplemented
        return (
            set(self._vertices) == set(other._vertices)
            and set(self.edges()) == set(other.edges())
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledDiGraph{label} |V|={self.vertex_count} "
            f"|E|={self.edge_count} |L|={self.label_count}>"
        )
