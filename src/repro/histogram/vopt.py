"""V-optimal histogram.

The V-optimal histogram chooses bucket boundaries that minimise the total
within-bucket sum of squared errors (SSE) — equivalently, the frequency
variance weighted by bucket width.  It is the histogram the paper uses for
all of its accuracy and latency experiments, because it is the one whose
quality depends most directly on how well the domain ordering groups
similar frequencies together.

Two construction strategies are provided:

* **exact** — the classical dynamic program (Jagadish et al., VLDB 1998):
  ``O(n² β)`` time with the inner minimisation vectorised over the split
  position.  Exact, but still quadratic; practical up to a few thousand
  domain positions.
* **greedy** — recursive bisection: start from one bucket and repeatedly
  split the bucket whose best split reduces total SSE the most, until ``β``
  buckets exist.  Near-linear in practice and within a few percent of the
  exact optimum on the experiment distributions (quantified by the
  ``ablation_vopt`` experiment).

The default strategy (``"auto"``) picks exact DP for small domains and the
greedy construction above :data:`EXACT_DOMAIN_LIMIT`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

import numpy as np

from repro.exceptions import HistogramError
from repro.histogram.base import Histogram
from repro.histogram.sparse import SparseFrequencies

__all__ = ["VOptimalHistogram", "EXACT_DOMAIN_LIMIT"]

#: Largest domain size for which the ``"auto"`` strategy uses the exact DP.
EXACT_DOMAIN_LIMIT = 1024

_STRATEGIES = ("auto", "exact", "greedy")


class _PrefixSums:
    """O(1) SSE of any interval via prefix sums of values and squares."""

    def __init__(self, frequencies: np.ndarray) -> None:
        self.sums = np.concatenate(([0.0], np.cumsum(frequencies)))
        self.squares = np.concatenate(([0.0], np.cumsum(np.square(frequencies))))

    def sse(self, start: int, end: int) -> float:
        """SSE of the half-open interval ``[start, end)``."""
        width = end - start
        if width <= 0:
            return 0.0
        total = self.sums[end] - self.sums[start]
        squared = self.squares[end] - self.squares[start]
        return float(max(0.0, squared - total * total / width))

    def sse_suffixes(self, start: int, end: int) -> np.ndarray:
        """Vector of ``sse(s, end)`` for every ``s`` in ``[start, end)``."""
        starts = np.arange(start, end)
        widths = end - starts
        totals = self.sums[end] - self.sums[starts]
        squares = self.squares[end] - self.squares[starts]
        return np.maximum(0.0, squares - totals * totals / widths)

    def sse_prefixes(self, start: int, end: int) -> np.ndarray:
        """Vector of ``sse(start, e)`` for every ``e`` in ``(start, end]``."""
        ends = np.arange(start + 1, end + 1)
        widths = ends - start
        totals = self.sums[ends] - self.sums[start]
        squares = self.squares[ends] - self.squares[start]
        return np.maximum(0.0, squares - totals * totals / widths)


class _SparsePrefixSums:
    """O(log nnz) prefix sums of a sparse vector (implicit zeros).

    The dense ``np.cumsum`` is sequential, so its value at any index equals
    the running sum of the nonzeros before that index — adding zeros is
    exact in floating point.  ``sums_at`` / ``squares_at`` therefore return
    bitwise the same numbers :class:`_PrefixSums` holds at those indices,
    which is what keeps the sparse greedy construction byte-identical to
    the dense one.
    """

    def __init__(self, frequencies: SparseFrequencies) -> None:
        self._positions = frequencies.positions
        values = frequencies.values
        self._sums = np.concatenate(([0.0], np.cumsum(values)))
        self._squares = np.concatenate(([0.0], np.cumsum(np.square(values))))

    def sums_at(self, indices):
        """Sum of the first ``index`` entries, for scalar or array indices."""
        return self._sums[np.searchsorted(self._positions, indices, side="left")]

    def squares_at(self, indices):
        """Sum of squares of the first ``index`` entries."""
        return self._squares[np.searchsorted(self._positions, indices, side="left")]

    def sse(self, start: int, end: int) -> float:
        """SSE of the half-open interval ``[start, end)``."""
        width = end - start
        if width <= 0:
            return 0.0
        total = self.sums_at(end) - self.sums_at(start)
        squared = self.squares_at(end) - self.squares_at(start)
        return float(max(0.0, squared - total * total / width))


class VOptimalHistogram(Histogram):
    """SSE-minimising histogram (exact DP or greedy-split approximation).

    Parameters
    ----------
    frequencies:
        The frequency vector of the ordered domain.
    bucket_count:
        The number of buckets ``β``.
    strategy:
        ``"exact"``, ``"greedy"`` or ``"auto"`` (the default — exact up to
        :data:`EXACT_DOMAIN_LIMIT` domain positions, greedy beyond).
    """

    kind = "v-optimal"

    def __init__(
        self,
        frequencies,
        bucket_count: int,
        *,
        strategy: str = "auto",
    ) -> None:
        if strategy not in _STRATEGIES:
            raise HistogramError(
                f"unknown V-optimal strategy {strategy!r}; expected one of {_STRATEGIES}"
            )
        self._strategy = strategy
        self._effective_strategy = strategy
        super().__init__(frequencies, bucket_count)

    @property
    def strategy(self) -> str:
        """The construction strategy that was requested."""
        return self._strategy

    @property
    def effective_strategy(self) -> str:
        """The strategy actually used after resolving ``"auto"``."""
        return self._effective_strategy

    def _resolve_strategy(self, domain: int) -> str:
        strategy = self._strategy
        if strategy == "auto":
            strategy = "exact" if domain <= EXACT_DOMAIN_LIMIT else "greedy"
        self._effective_strategy = strategy
        return strategy

    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        strategy = self._resolve_strategy(domain)
        if bucket_count >= domain:
            return list(range(domain))
        if strategy == "exact":
            return self._exact_boundaries(frequencies, bucket_count)
        return self._greedy_boundaries(frequencies, bucket_count)

    def _boundaries_sparse(
        self, frequencies: SparseFrequencies, bucket_count: int
    ) -> list[int]:
        """Sparse boundary placement: O(nnz · β) greedy, no dense arrays.

        The greedy strategy runs the shared split loop against
        :class:`_SparsePrefixSums` — see :meth:`_best_split_sparse` for why
        the boundaries come out byte-identical to the dense construction.
        The exact DP is quadratic in the domain by nature, so it densifies
        (the ``auto`` strategy only ever picks it for domains at or below
        :data:`EXACT_DOMAIN_LIMIT`, where a dense vector is a few KB).
        """
        domain = frequencies.size
        strategy = self._resolve_strategy(domain)
        if bucket_count >= domain:
            return list(range(domain))
        if strategy == "exact":
            return self._exact_boundaries(frequencies.toarray(), bucket_count)
        prefix = _SparsePrefixSums(frequencies)
        positions = frequencies.positions

        def best_split(start: int, end: int) -> tuple[float, Optional[int]]:
            """Best SSE-reducing split of ``[start, end)`` (sparse sums)."""
            return self._best_split_sparse(prefix, positions, start, end)

        return self._greedy_loop(domain, bucket_count, best_split)

    # ------------------------------------------------------------------
    # exact dynamic program
    # ------------------------------------------------------------------
    @staticmethod
    def _exact_boundaries(frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        prefix = _PrefixSums(frequencies)
        infinity = float("inf")
        # previous[i] = minimal SSE of covering the first ``i`` positions with
        # (buckets_used - 1) buckets; split[b][i] = start of the last bucket in
        # an optimal covering of the first ``i`` positions with ``b`` buckets.
        previous = np.full(domain + 1, infinity)
        previous[0] = 0.0
        split = np.zeros((bucket_count + 1, domain + 1), dtype=np.int64)
        starts_axis = np.arange(domain + 1)
        for buckets_used in range(1, bucket_count + 1):
            current = np.full(domain + 1, infinity)
            for end in range(buckets_used, domain + 1):
                # Candidate costs over every admissible start of the last
                # bucket, computed in one vectorised sweep.
                lo = buckets_used - 1
                starts = starts_axis[lo:end]
                widths = end - starts
                totals = prefix.sums[end] - prefix.sums[starts]
                squares = prefix.squares[end] - prefix.squares[starts]
                last_sse = np.maximum(0.0, squares - totals * totals / widths)
                candidates = previous[lo:end] + last_sse
                best = int(np.argmin(candidates))
                current[end] = candidates[best]
                split[buckets_used][end] = lo + best
            previous = current
        boundaries: list[int] = []
        end = domain
        for buckets_used in range(bucket_count, 0, -1):
            start = int(split[buckets_used][end])
            boundaries.append(start)
            end = start
        boundaries.reverse()
        return boundaries

    # ------------------------------------------------------------------
    # greedy split approximation
    # ------------------------------------------------------------------
    @staticmethod
    def _best_split(prefix: _PrefixSums, start: int, end: int) -> tuple[float, Optional[int]]:
        """Best single split of ``[start, end)``: (SSE reduction, split point)."""
        whole = prefix.sse(start, end)
        if end - start <= 1 or whole <= 0.0:
            return 0.0, None
        # gain(p) = sse(start, end) - sse(start, p) - sse(p, end), p in (start, end)
        left = prefix.sse_prefixes(start, end - 1)          # sse(start, p) for p in (start, end)
        right = prefix.sse_suffixes(start + 1, end)         # sse(p, end) for p in (start+1, end)
        gains = whole - left - right
        best = int(np.argmax(gains))
        best_gain = float(gains[best])
        if best_gain <= 0.0:
            return 0.0, None
        return best_gain, start + 1 + best

    @staticmethod
    def _best_split_sparse(
        prefix: _SparsePrefixSums,
        positions: np.ndarray,
        start: int,
        end: int,
    ) -> tuple[float, Optional[int]]:
        """Sparse best single split of ``[start, end)``.

        The dense search evaluates the gain at *every* split point; between
        two consecutive nonzeros the left/right sums are constant, so the
        gain there is ``C + T_L²/(p-start) + T_R²/(end-p)`` — a convex
        function of ``p`` whose maximum over a segment sits on a segment
        endpoint.  Evaluating only the endpoints (positions adjacent to a
        nonzero, plus the interval edges) with the *same float expressions*
        the dense sweep uses therefore finds the same maximal gain at the
        same first-maximising split point, in O(local nnz) instead of
        O(width).
        """
        whole = prefix.sse(start, end)
        if end - start <= 1 or whole <= 0.0:
            return 0.0, None
        low, high = np.searchsorted(positions, [start, end])
        inner = positions[low:high]
        candidates = np.unique(
            np.concatenate((inner, inner + 1, [start + 1, end - 1]))
        )
        candidates = candidates[(candidates > start) & (candidates < end)]
        widths_left = candidates - start
        sums_at = prefix.sums_at
        squares_at = prefix.squares_at
        totals_left = sums_at(candidates) - sums_at(start)
        squares_left = squares_at(candidates) - squares_at(start)
        left = np.maximum(0.0, squares_left - totals_left * totals_left / widths_left)
        widths_right = end - candidates
        totals_right = sums_at(end) - sums_at(candidates)
        squares_right = squares_at(end) - squares_at(candidates)
        right = np.maximum(
            0.0, squares_right - totals_right * totals_right / widths_right
        )
        gains = whole - left - right
        best = int(np.argmax(gains))
        best_gain = float(gains[best])
        if best_gain <= 0.0:
            return 0.0, None
        return best_gain, int(candidates[best])

    @classmethod
    def _greedy_boundaries(cls, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        prefix = _PrefixSums(frequencies)

        def best_split(start: int, end: int) -> tuple[float, Optional[int]]:
            """Best SSE-reducing split of ``[start, end)`` (dense sums)."""
            return cls._best_split(prefix, start, end)

        return cls._greedy_loop(domain, bucket_count, best_split)

    @classmethod
    def _greedy_loop(
        cls,
        domain: int,
        bucket_count: int,
        best_split: Callable[[int, int], tuple[float, Optional[int]]],
    ) -> list[int]:
        # Max-heap of candidate splits keyed by SSE reduction; entries carry a
        # tie-breaking counter so the heap never compares interval tuples.
        counter = 0
        heap: list[tuple[float, int, int, int, int]] = []
        intact: set[tuple[int, int]] = set()

        def push(start: int, end: int) -> None:
            """Queue the interval's best split (if it reduces SSE)."""
            nonlocal counter
            intact.add((start, end))
            gain, point = best_split(start, end)
            if point is not None and gain > 0.0:
                heapq.heappush(heap, (-gain, counter, start, end, point))
                counter += 1

        boundaries = {0}
        push(0, domain)
        while len(boundaries) < bucket_count and heap:
            _, _, start, end, point = heapq.heappop(heap)
            if (start, end) not in intact:
                continue
            intact.discard((start, end))
            boundaries.add(point)
            push(start, point)
            push(point, end)
        # If the distribution ran out of SSE to remove (e.g. long runs of equal
        # frequencies), pad with equal-width splits of the widest buckets so
        # the bucket count still honours the request.  A width heap makes the
        # padding O(β log β) instead of re-sorting all boundaries per split;
        # keys are (-width, -start) to preserve the historical widest-then-
        # rightmost split order.
        ordered = sorted(boundaries)
        if len(ordered) < bucket_count:
            ends = ordered[1:] + [domain]
            width_heap = [
                (start - end, -start)
                for start, end in zip(ordered, ends)
                if end - start > 1
            ]
            heapq.heapify(width_heap)
            count = len(ordered)
            while count < bucket_count and width_heap:
                negative_width, negative_start = heapq.heappop(width_heap)
                width, start = -negative_width, -negative_start
                point = start + width // 2
                ordered.append(point)
                count += 1
                if point - start > 1:
                    heapq.heappush(width_heap, (start - point, -start))
                if start + width - point > 1:
                    heapq.heappush(width_heap, (point - start - width, -point))
            ordered.sort()
        return ordered
