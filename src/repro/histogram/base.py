"""Histogram base class and shared machinery.

A histogram partitions the frequency vector of an ordered domain
``[0, n)`` into ``β`` buckets (Section 2 of the paper) and answers point
estimates by the uniform-frequency assumption within the containing bucket.
Concrete subclasses only decide *where the bucket boundaries go*; storage,
lookup, serialisation and quality metrics are shared here.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence, Union

import numpy as np

from repro.exceptions import HistogramError, InvalidBucketCountError
from repro.histogram.bucket import Bucket
from repro.histogram.sparse import SparseFrequencies

__all__ = ["Histogram", "frequencies_to_array"]

Frequencies = Union[Iterable[float], SparseFrequencies]


def frequencies_to_array(frequencies: Iterable[float]) -> np.ndarray:
    """Coerce a frequency iterable to a 1-D float array, validating values."""
    array = np.asarray(list(frequencies) if not isinstance(frequencies, np.ndarray) else frequencies, dtype=float)
    if array.ndim != 1:
        raise HistogramError("frequencies must be one-dimensional")
    if array.size == 0:
        raise HistogramError("frequencies must not be empty")
    if np.any(array < 0):
        raise HistogramError("frequencies must be non-negative")
    return array


class Histogram:
    """A bucketised approximation of a frequency vector.

    Subclasses implement :meth:`_boundaries`, returning the sorted list of
    bucket start positions (the first is always 0); everything else is
    inherited.

    ``frequencies`` may also be a
    :class:`~repro.histogram.sparse.SparseFrequencies` view, in which case
    boundary placement goes through :meth:`_boundaries_sparse` — overridden
    by every built-in kind with an O(nnz)-memory algorithm whose boundaries
    are byte-identical to the dense path — and the bucket statistics are
    computed from the nonzero stream.
    """

    #: Registry name of the histogram kind (e.g. ``"equi-width"``).
    kind: str = "base"

    def __init__(self, frequencies: Frequencies, bucket_count: int) -> None:
        if isinstance(frequencies, SparseFrequencies):
            domain = frequencies.size
            if bucket_count < 1 or bucket_count > domain:
                raise InvalidBucketCountError(bucket_count, domain)
            self._domain_size = domain
            self._requested_buckets = bucket_count
            starts = self._boundaries_sparse(frequencies, bucket_count)
            self._buckets = self._materialise_sparse(frequencies, starts)
        else:
            array = frequencies_to_array(frequencies)
            domain = int(array.size)
            if bucket_count < 1 or bucket_count > domain:
                raise InvalidBucketCountError(bucket_count, domain)
            self._domain_size = domain
            self._requested_buckets = bucket_count
            starts = self._boundaries(array, bucket_count)
            self._buckets = self._materialise(array, starts)
        self._starts = [bucket.start for bucket in self._buckets]

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        """Return the sorted bucket start positions (must begin with 0)."""
        raise NotImplementedError

    def _boundaries_sparse(
        self, frequencies: SparseFrequencies, bucket_count: int
    ) -> list[int]:
        """Sparse-input counterpart of :meth:`_boundaries`.

        The base implementation densifies and delegates — correct for any
        subclass, but O(n) memory; the built-in kinds all override it with
        an implicit-zero-run algorithm that never materialises the domain.
        """
        return self._boundaries(frequencies.toarray(), bucket_count)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _normalise_starts(starts: Sequence[int], domain: int) -> list[int]:
        """Validate and de-duplicate bucket start positions."""
        if not starts or starts[0] != 0:
            raise HistogramError("bucket boundaries must start at 0")
        unique_starts = sorted(set(int(s) for s in starts))
        if unique_starts[-1] >= domain and domain > 0 and len(unique_starts) > 1:
            raise HistogramError("a bucket start lies outside the domain")
        return unique_starts

    @classmethod
    def _materialise(
        cls, frequencies: np.ndarray, starts: Sequence[int]
    ) -> list[Bucket]:
        domain = int(frequencies.size)
        unique_starts = cls._normalise_starts(starts, domain)
        buckets: list[Bucket] = []
        for position, start in enumerate(unique_starts):
            end = unique_starts[position + 1] if position + 1 < len(unique_starts) else domain
            chunk = frequencies[start:end]
            buckets.append(
                Bucket(
                    start=start,
                    end=end,
                    total=float(chunk.sum()),
                    squared_total=float(np.square(chunk).sum()),
                    minimum=float(chunk.min()),
                    maximum=float(chunk.max()),
                )
            )
        return buckets

    @classmethod
    def _materialise_sparse(
        cls, frequencies: SparseFrequencies, starts: Sequence[int]
    ) -> list[Bucket]:
        """Bucket statistics straight from the nonzero stream.

        Each bucket's totals come from the values inside its position range;
        a bucket whose width exceeds its nonzero count contains an implicit
        zero, which caps its minimum.  For the integer-valued frequencies a
        catalog produces these sums are exact, so they match the dense
        chunk sums bitwise.
        """
        domain = frequencies.size
        unique_starts = cls._normalise_starts(starts, domain)
        positions = frequencies.positions
        values = frequencies.values
        edges = np.asarray(list(unique_starts) + [domain], dtype=np.int64)
        cuts = np.searchsorted(positions, edges)
        buckets: list[Bucket] = []
        for position in range(len(unique_starts)):
            start = int(edges[position])
            end = int(edges[position + 1])
            first, last = int(cuts[position]), int(cuts[position + 1])
            chunk = values[first:last]
            stored = last - first
            width = end - start
            if stored:
                total = float(chunk.sum())
                squared = float(np.square(chunk).sum())
                maximum = float(chunk.max())
                minimum = float(chunk.min()) if stored == width else 0.0
            else:
                total = squared = maximum = minimum = 0.0
            buckets.append(
                Bucket(
                    start=start,
                    end=end,
                    total=total,
                    squared_total=squared,
                    minimum=minimum,
                    maximum=maximum,
                )
            )
        return buckets

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def domain_size(self) -> int:
        """Size ``n`` of the ordered domain the histogram covers."""
        return self._domain_size

    @property
    def bucket_count(self) -> int:
        """The number of buckets actually materialised (``≤`` requested)."""
        return len(self._buckets)

    @property
    def requested_bucket_count(self) -> int:
        """The ``β`` requested at construction time."""
        return self._requested_buckets

    @property
    def buckets(self) -> tuple[Bucket, ...]:
        """The buckets, sorted by start index."""
        return tuple(self._buckets)

    def total_sse(self) -> float:
        """Total within-bucket sum of squared errors (V-optimal's objective)."""
        return sum(bucket.sse for bucket in self._buckets)

    def total_frequency(self) -> float:
        """Sum of frequencies across the whole domain."""
        return sum(bucket.total for bucket in self._buckets)

    def storage_entries(self) -> int:
        """Number of scalar values the histogram must store.

        Each bucket needs its start boundary and its frequency total, so the
        footprint is ``2 β`` scalars; exposed for memory-budget comparisons
        against the ideal ordering's ``|Lk|`` entries.
        """
        return 2 * len(self._buckets)

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def bucket_for(self, index: int) -> Bucket:
        """The bucket containing domain position ``index``."""
        if index < 0 or index >= self._domain_size:
            raise HistogramError(
                f"index {index} outside the histogram domain [0, {self._domain_size})"
            )
        position = bisect.bisect_right(self._starts, index) - 1
        return self._buckets[position]

    def estimate(self, index: int) -> float:
        """Point estimate: the average frequency of the containing bucket."""
        return self.bucket_for(index).average

    def _lookup_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Bucket starts and averages as arrays (built lazily, then cached)."""
        cached = getattr(self, "_lookup_cache", None)
        if cached is None:
            starts = np.asarray(self._starts, dtype=np.int64)
            averages = np.asarray([bucket.average for bucket in self._buckets], dtype=float)
            cached = (starts, averages)
            self._lookup_cache = cached
        return cached

    def estimate_batch(self, indices) -> np.ndarray:
        """Point estimates for an array of domain positions, vectorised.

        Equivalent to ``np.array([self.estimate(i) for i in indices])`` but a
        single ``searchsorted`` + fancy-index pair, which is what makes
        thousands-of-paths batches cheap.
        """
        positions = np.ascontiguousarray(indices, dtype=np.int64)
        if positions.ndim != 1:
            raise HistogramError("indices must be one-dimensional")
        if positions.size == 0:
            return np.empty(0, dtype=float)
        if int(positions.min()) < 0 or int(positions.max()) >= self._domain_size:
            raise HistogramError(
                f"batch contains indices outside the histogram domain "
                f"[0, {self._domain_size})"
            )
        starts, averages = self._lookup_arrays()
        return averages[np.searchsorted(starts, positions, side="right") - 1]

    def estimate_range(self, start: int, end: int) -> float:
        """Estimated total frequency of the half-open index range ``[start, end)``.

        Buckets fully covered contribute their exact stored total; partially
        covered buckets contribute proportionally (uniformity assumption).
        """
        if end <= start:
            return 0.0
        if start < 0 or end > self._domain_size:
            raise HistogramError(
                f"range [{start}, {end}) outside the histogram domain "
                f"[0, {self._domain_size})"
            )
        total = 0.0
        position = bisect.bisect_right(self._starts, start) - 1
        while position < len(self._buckets):
            bucket = self._buckets[position]
            if bucket.start >= end:
                break
            overlap = min(end, bucket.end) - max(start, bucket.start)
            total += bucket.average * overlap
            position += 1
        return total

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable description of the histogram."""
        return {
            "kind": self.kind,
            "domain_size": self._domain_size,
            "requested_buckets": self._requested_buckets,
            "buckets": [
                {
                    "start": bucket.start,
                    "end": bucket.end,
                    "total": bucket.total,
                    "squared_total": bucket.squared_total,
                    "minimum": bucket.minimum,
                    "maximum": bucket.maximum,
                }
                for bucket in self._buckets
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<{type(self).__name__} kind={self.kind!r} domain={self._domain_size} "
            f"buckets={len(self._buckets)}>"
        )
