"""Persisting and reconstructing label-path histograms.

A production system builds its statistics offline and loads them in the
optimizer process, so the histogram + ordering pair must round-trip through a
file without needing the (much larger) selectivity catalog at load time.
This module serialises a :class:`~repro.histogram.builder.LabelPathHistogram`
to JSON: the ordering is stored as its method name plus the label
cardinalities its ranking was derived from (a few scalars), and the histogram
as its bucket table.

The ideal ordering and other materialised orderings are intentionally *not*
supported — their serialised form would be the full ``|Lk|`` index table,
which is exactly the memory cost the paper argues against.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import HistogramError, OrderingError
from repro.histogram.base import Histogram
from repro.histogram.bucket import Bucket
from repro.histogram.builder import LabelPathHistogram
from repro.ordering.base import Ordering
from repro.ordering.ranking import AlphabeticalRanking, CardinalityRanking
from repro.ordering.registry import make_ordering

__all__ = ["histogram_to_dict", "histogram_from_dict", "save_histogram", "load_histogram"]

_SERIALISABLE_METHODS = {"num-alph", "num-card", "lex-alph", "lex-card", "sum-based"}


class _RestoredHistogram(Histogram):
    """A histogram rebuilt from stored buckets (no frequency vector needed)."""

    kind = "restored"

    def __init__(self, buckets: list[Bucket], domain_size: int, kind: str) -> None:
        # Bypass the normal constructor: there is no frequency vector to
        # re-bucket, only the stored bucket table.
        self.kind = kind
        self._domain_size = domain_size
        self._requested_buckets = len(buckets)
        self._buckets = sorted(buckets, key=lambda bucket: bucket.start)
        self._starts = [bucket.start for bucket in self._buckets]
        if not self._buckets or self._buckets[0].start != 0 or self._buckets[-1].end != domain_size:
            raise HistogramError("restored buckets do not tile the stored domain")
        for left, right in zip(self._buckets, self._buckets[1:]):
            if left.end != right.start:
                raise HistogramError("restored buckets overlap or leave gaps")

    def _boundaries(self, frequencies, bucket_count):  # pragma: no cover - unused
        raise HistogramError("a restored histogram cannot be re-bucketed")


def _ordering_to_dict(ordering: Ordering) -> dict[str, object]:
    method = ordering.full_name
    if method not in _SERIALISABLE_METHODS:
        raise OrderingError(
            f"ordering {method!r} cannot be serialised (only the paper's five "
            "closed-form orderings round-trip without materialising the domain)"
        )
    document: dict[str, object] = {
        "method": method,
        "labels": list(ordering.labels),
        "max_length": ordering.max_length,
    }
    if isinstance(ordering.ranking, CardinalityRanking):
        document["cardinalities"] = dict(ordering.ranking.cardinalities)
    elif not isinstance(ordering.ranking, AlphabeticalRanking):
        raise OrderingError(
            f"ranking rule {type(ordering.ranking).__name__} cannot be serialised"
        )
    return document


def _ordering_from_dict(document: dict[str, object]) -> Ordering:
    try:
        method = str(document["method"])
        labels = [str(label) for label in document["labels"]]  # type: ignore[index]
        max_length = int(document["max_length"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as exc:
        raise OrderingError(f"invalid ordering document: {exc}") from exc
    cardinalities = document.get("cardinalities")
    return make_ordering(
        method,
        labels=labels,
        max_length=max_length,
        cardinalities=dict(cardinalities) if cardinalities is not None else None,  # type: ignore[arg-type]
    )


def histogram_to_dict(label_path_histogram: LabelPathHistogram) -> dict[str, object]:
    """A JSON-serialisable description of a label-path histogram."""
    return {
        "ordering": _ordering_to_dict(label_path_histogram.ordering),
        "histogram": label_path_histogram.histogram.to_dict(),
    }


def histogram_from_dict(document: dict[str, object]) -> LabelPathHistogram:
    """Rebuild a :class:`LabelPathHistogram` from :func:`histogram_to_dict` output."""
    try:
        ordering_doc = dict(document["ordering"])  # type: ignore[arg-type]
        histogram_doc = dict(document["histogram"])  # type: ignore[arg-type]
        buckets_raw = list(histogram_doc["buckets"])
        domain_size = int(histogram_doc["domain_size"])
        kind = str(histogram_doc.get("kind", "restored"))
    except (KeyError, TypeError, ValueError) as exc:
        raise HistogramError(f"invalid histogram document: {exc}") from exc
    ordering = _ordering_from_dict(ordering_doc)
    buckets = [
        Bucket(
            start=int(raw["start"]),
            end=int(raw["end"]),
            total=float(raw["total"]),
            squared_total=float(raw["squared_total"]),
            minimum=float(raw["minimum"]),
            maximum=float(raw["maximum"]),
        )
        for raw in buckets_raw
    ]
    restored = _RestoredHistogram(buckets, domain_size, kind)
    return LabelPathHistogram(ordering, restored)


def save_histogram(
    label_path_histogram: LabelPathHistogram, path: Union[str, Path]
) -> None:
    """Write a label-path histogram to ``path`` as JSON."""
    with open(Path(path), "w", encoding="utf-8") as handle:
        json.dump(histogram_to_dict(label_path_histogram), handle, sort_keys=True)
        handle.write("\n")


def load_histogram(path: Union[str, Path]) -> LabelPathHistogram:
    """Read a label-path histogram previously written by :func:`save_histogram`."""
    with open(Path(path), "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise HistogramError("histogram document must be a JSON object")
    return histogram_from_dict(document)
