"""Equi-depth (equi-height) histogram.

Bucket boundaries are chosen so that each bucket holds (approximately) the
same total frequency mass.  Classic relational baseline; included for the
histogram-type ablation study.
"""

from __future__ import annotations

import numpy as np

from repro.histogram.base import Histogram

__all__ = ["EquiDepthHistogram"]


class EquiDepthHistogram(Histogram):
    """Partition the domain so each bucket carries roughly equal frequency mass."""

    kind = "equi-depth"

    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        total = float(frequencies.sum())
        if total <= 0.0:
            # Degenerate all-zero distribution: fall back to equal widths.
            base_width, remainder = divmod(domain, bucket_count)
            starts, position = [], 0
            for bucket_index in range(bucket_count):
                starts.append(position)
                position += base_width + (1 if bucket_index < remainder else 0)
            return starts
        cumulative = np.cumsum(frequencies)
        starts = [0]
        for bucket_index in range(1, bucket_count):
            target = total * bucket_index / bucket_count
            # First position whose cumulative mass reaches the target.
            boundary = int(np.searchsorted(cumulative, target, side="left")) + 1
            boundary = min(max(boundary, starts[-1] + 1), domain - (bucket_count - bucket_index))
            if boundary <= starts[-1]:
                boundary = starts[-1] + 1
            starts.append(boundary)
        return starts
