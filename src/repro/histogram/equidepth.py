"""Equi-depth (equi-height) histogram.

Bucket boundaries are chosen so that each bucket holds (approximately) the
same total frequency mass.  Classic relational baseline; included for the
histogram-type ablation study.
"""

from __future__ import annotations

import numpy as np

from repro.histogram.base import Histogram
from repro.histogram.equiwidth import equal_width_starts
from repro.histogram.sparse import SparseFrequencies

__all__ = ["EquiDepthHistogram"]


class EquiDepthHistogram(Histogram):
    """Partition the domain so each bucket carries roughly equal frequency mass."""

    kind = "equi-depth"

    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        total = float(frequencies.sum())
        if total <= 0.0:
            # Degenerate all-zero distribution: fall back to equal widths.
            return equal_width_starts(domain, bucket_count)
        cumulative = np.cumsum(frequencies)
        starts = [0]
        for bucket_index in range(1, bucket_count):
            target = total * bucket_index / bucket_count
            # First position whose cumulative mass reaches the target.
            boundary = int(np.searchsorted(cumulative, target, side="left")) + 1
            boundary = min(max(boundary, starts[-1] + 1), domain - (bucket_count - bucket_index))
            if boundary <= starts[-1]:
                boundary = starts[-1] + 1
            starts.append(boundary)
        return starts

    def _boundaries_sparse(
        self, frequencies: SparseFrequencies, bucket_count: int
    ) -> list[int]:
        # The dense cumulative-mass curve is a step function that only jumps
        # at nonzero positions, so "first position whose cumulative mass
        # reaches the target" is the position of the first nonzero whose
        # running sum does — one searchsorted over O(nnz) running sums, with
        # the same float targets and the same clamping as the dense path.
        domain = frequencies.size
        values = frequencies.values
        total = float(values.sum())
        if total <= 0.0:
            return equal_width_starts(domain, bucket_count)
        positions = frequencies.positions
        cumulative = np.cumsum(values)
        starts = [0]
        for bucket_index in range(1, bucket_count):
            target = total * bucket_index / bucket_count
            found = int(np.searchsorted(cumulative, target, side="left"))
            boundary = (
                int(positions[found]) + 1 if found < positions.size else domain + 1
            )
            boundary = min(max(boundary, starts[-1] + 1), domain - (bucket_count - bucket_index))
            if boundary <= starts[-1]:
                boundary = starts[-1] + 1
            starts.append(boundary)
        return starts
