"""MaxDiff histogram.

Bucket boundaries are placed at the ``β - 1`` largest *differences* between
adjacent frequencies, the classical MaxDiff(V, A) heuristic of Poosala et al.
It approximates V-optimal behaviour at a fraction of the construction cost
and serves as an additional point of comparison in the histogram-type
ablation.
"""

from __future__ import annotations

import numpy as np

from repro.histogram.base import Histogram
from repro.histogram.sparse import SparseFrequencies, absent_positions

__all__ = ["MaxDiffHistogram"]


class MaxDiffHistogram(Histogram):
    """Split at the largest adjacent-frequency differences."""

    kind = "maxdiff"

    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        if bucket_count == 1 or domain == 1:
            return [0]
        differences = np.abs(np.diff(frequencies))
        # A boundary after position i corresponds to a bucket start at i + 1.
        # Pick the (β - 1) largest differences; ties resolved by position so
        # construction is deterministic.
        order = np.lexsort((np.arange(differences.size), -differences))
        chosen = sorted(int(position) + 1 for position in order[: bucket_count - 1])
        return [0] + chosen

    def _boundaries_sparse(
        self, frequencies: SparseFrequencies, bucket_count: int
    ) -> list[int]:
        # An adjacent difference can only be nonzero next to a nonzero
        # entry, so the candidate set is the ≤ 2·nnz positions touching one;
        # everything else has difference exactly 0.  The dense tie order —
        # descending difference, then ascending position — is reproduced by
        # ranking the positive candidates and filling any shortfall with the
        # smallest zero-difference positions (an implicit-zero-run walk).
        domain = frequencies.size
        if bucket_count == 1 or domain == 1:
            return [0]
        positions = frequencies.positions
        difference_count = domain - 1
        left = positions - 1
        right = positions
        candidates = np.unique(
            np.concatenate((left[left >= 0], right[right < difference_count]))
        )
        if candidates.size:
            diffs = np.abs(
                frequencies.value_at(candidates + 1)
                - frequencies.value_at(candidates)
            )
            positive = diffs > 0
            positive_indices = candidates[positive]
            order = np.lexsort((positive_indices, -diffs[positive]))
            chosen = [int(i) for i in positive_indices[order][: bucket_count - 1]]
        else:
            positive_indices = np.empty(0, dtype=np.int64)
            chosen = []
        needed = (bucket_count - 1) - len(chosen)
        if needed > 0:
            chosen.extend(
                absent_positions(
                    np.sort(positive_indices), difference_count, needed
                )
            )
        return [0] + sorted(position + 1 for position in chosen)
