"""MaxDiff histogram.

Bucket boundaries are placed at the ``β - 1`` largest *differences* between
adjacent frequencies, the classical MaxDiff(V, A) heuristic of Poosala et al.
It approximates V-optimal behaviour at a fraction of the construction cost
and serves as an additional point of comparison in the histogram-type
ablation.
"""

from __future__ import annotations

import numpy as np

from repro.histogram.base import Histogram

__all__ = ["MaxDiffHistogram"]


class MaxDiffHistogram(Histogram):
    """Split at the largest adjacent-frequency differences."""

    kind = "maxdiff"

    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        if bucket_count == 1 or domain == 1:
            return [0]
        differences = np.abs(np.diff(frequencies))
        # A boundary after position i corresponds to a bucket start at i + 1.
        # Pick the (β - 1) largest differences; ties resolved by position so
        # construction is deterministic.
        order = np.lexsort((np.arange(differences.size), -differences))
        chosen = sorted(int(position) + 1 for position in order[: bucket_count - 1])
        return [0] + chosen
