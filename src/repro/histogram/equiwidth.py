"""Equi-width histogram.

Buckets cover (nearly) equal-width index ranges of the ordered domain.  This
is the histogram drawn in red in the paper's Figure 1 and the cheapest
possible partitioning: boundaries depend only on the domain size, never on
the data.
"""

from __future__ import annotations

import numpy as np

from repro.histogram.base import Histogram
from repro.histogram.sparse import SparseFrequencies

__all__ = ["EquiWidthHistogram", "equal_width_starts"]


def equal_width_starts(domain: int, bucket_count: int) -> list[int]:
    """``β`` bucket starts of (nearly) equal width over ``[0, domain)``.

    The remainder is distributed over the first buckets so widths differ by
    at most one, e.g. domain 10 / β 4 -> widths 3, 3, 2, 2.  Shared by the
    equi-width histogram and the all-zero fallback of the equi-depth one.
    """
    base_width, remainder = divmod(domain, bucket_count)
    starts: list[int] = []
    position = 0
    for bucket_index in range(bucket_count):
        starts.append(position)
        position += base_width + (1 if bucket_index < remainder else 0)
    return starts


class EquiWidthHistogram(Histogram):
    """Partition the domain into ``β`` buckets of (nearly) equal width."""

    kind = "equi-width"

    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        return equal_width_starts(int(frequencies.size), bucket_count)

    def _boundaries_sparse(
        self, frequencies: SparseFrequencies, bucket_count: int
    ) -> list[int]:
        # Boundaries depend only on the domain size, never on the data.
        return equal_width_starts(frequencies.size, bucket_count)
