"""Building label-path histograms from a catalog and an ordering.

:class:`LabelPathHistogram` is the user-facing object of the whole library:
it couples an ordering of the label-path domain with a bucketised histogram
of the true selectivities in that order, and answers ``estimate(path)``
point queries — the operation the paper times in Table 4 and scores in
Figure 2.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import HistogramError
from repro.histogram.base import Histogram
from repro.histogram.endbiased import EndBiasedHistogram
from repro.histogram.equidepth import EquiDepthHistogram
from repro.histogram.equiwidth import EquiWidthHistogram
from repro.histogram.maxdiff import MaxDiffHistogram
from repro.histogram.sparse import SparseFrequencies
from repro.histogram.vopt import VOptimalHistogram
from repro.ordering.base import Ordering
from repro.paths.catalog import SelectivityCatalog
from repro.paths.label_path import LabelPath

__all__ = [
    "HISTOGRAM_KINDS",
    "LabelPathHistogram",
    "build_histogram",
    "domain_frequencies",
    "make_histogram",
]

#: Histogram kind name -> class.
HISTOGRAM_KINDS: dict[str, type[Histogram]] = {
    EquiWidthHistogram.kind: EquiWidthHistogram,
    EquiDepthHistogram.kind: EquiDepthHistogram,
    MaxDiffHistogram.kind: MaxDiffHistogram,
    EndBiasedHistogram.kind: EndBiasedHistogram,
    VOptimalHistogram.kind: VOptimalHistogram,
}

PathLike = Union[str, LabelPath]


def domain_frequencies(
    catalog: SelectivityCatalog,
    ordering: Ordering,
    *,
    positions: Optional[np.ndarray] = None,
) -> Union[np.ndarray, SparseFrequencies]:
    """The catalog's selectivities laid out in the ordering's index order.

    Element ``i`` of the result is ``f(ordering.path(i))``; this is the data
    distribution the histogram is built over (the black curve of the paper's
    Figure 1, in whichever order ``ordering`` prescribes).

    For dense-storage catalogs the columnar frequency vector is permuted in
    one vectorised scatter — no per-path dict lookups — and a dense float
    array is returned.  For sparse-storage catalogs only the nonzero paths
    are ranked (through :meth:`Ordering.rank_domain_indices`) and the layout
    comes back as a :class:`~repro.histogram.sparse.SparseFrequencies` view,
    O(nnz) end to end; the histogram constructors accept either form and
    produce byte-identical bucket boundaries.

    ``positions``, when given, is the precomputed full permutation
    (``positions[i]`` = ordering index of the ``i``-th path of the canonical
    enumeration, as cached by the engine's artifact store); otherwise the
    required ranks are derived on the fly.
    """
    if set(ordering.labels) != set(catalog.labels):
        raise HistogramError(
            "ordering and catalog use different label alphabets: "
            f"{sorted(ordering.labels)} vs {sorted(catalog.labels)}"
        )
    if ordering.max_length > catalog.max_length:
        raise HistogramError(
            f"ordering max_length={ordering.max_length} exceeds catalog "
            f"max_length={catalog.max_length}"
        )
    if positions is not None and positions.shape != (ordering.size,):
        raise HistogramError(
            f"position table has shape {positions.shape}, "
            f"expected ({ordering.size},)"
        )
    if catalog.storage == "sparse":
        nz_indices, nz_values = catalog.nonzero_arrays()
        # The canonical order is length-major, so a shorter ordering domain
        # is a prefix of the canonical index space.
        cut = int(np.searchsorted(nz_indices, ordering.size))
        nz_indices = nz_indices[:cut]
        nz_values = nz_values[:cut]
        mapped = (
            positions[nz_indices]
            if positions is not None
            else ordering.rank_domain_indices(nz_indices)
        )
        order = np.argsort(mapped, kind="stable")
        return SparseFrequencies(
            mapped[order], nz_values[order].astype(float), ordering.size
        )
    if positions is None:
        positions = ordering.index_array()
    frequencies = np.zeros(ordering.size, dtype=float)
    # The canonical order is length-major, so a shorter ordering domain is a
    # prefix slice of the catalog's vector.
    frequencies[positions] = catalog.frequency_vector()[: ordering.size]
    return frequencies


def make_histogram(
    frequencies, kind: str, bucket_count: int, **kwargs
) -> Histogram:
    """Construct a histogram of the given ``kind`` over a frequency vector."""
    try:
        histogram_cls = HISTOGRAM_KINDS[kind]
    except KeyError:
        raise HistogramError(
            f"unknown histogram kind {kind!r}; expected one of "
            f"{sorted(HISTOGRAM_KINDS)}"
        ) from None
    return histogram_cls(frequencies, bucket_count, **kwargs)


class LabelPathHistogram:
    """A histogram over the label-path domain under a specific ordering.

    Parameters
    ----------
    ordering:
        The domain ordering (bijection ``Lk ↔ [0, |Lk|)``).
    histogram:
        A histogram whose domain size equals ``ordering.size``.
    """

    def __init__(self, ordering: Ordering, histogram: Histogram) -> None:
        if histogram.domain_size != ordering.size:
            raise HistogramError(
                f"histogram domain ({histogram.domain_size}) does not match the "
                f"ordering domain ({ordering.size})"
            )
        self._ordering = ordering
        self._histogram = histogram

    @property
    def ordering(self) -> Ordering:
        """The domain ordering."""
        return self._ordering

    @property
    def histogram(self) -> Histogram:
        """The underlying bucketised histogram."""
        return self._histogram

    @property
    def bucket_count(self) -> int:
        """Number of buckets ``β``."""
        return self._histogram.bucket_count

    @property
    def method_name(self) -> str:
        """The ordering method name (``num-alph``, ..., ``sum-based``)."""
        return self._ordering.full_name

    def estimate(self, path: PathLike) -> float:
        """The selectivity estimate ``e(ℓ)`` for a label path."""
        return self._histogram.estimate(self._ordering.index(path))

    def estimate_index(self, index: int) -> float:
        """The estimate for a raw domain index (bypassing the ordering)."""
        return self._histogram.estimate(index)

    def estimate_batch(self, paths) -> np.ndarray:
        """Estimates for a batch of paths, in input order (vectorised lookup).

        Ranking still happens per path through the ordering; the bucket
        lookup is a single vectorised call.  The engine layer
        (:mod:`repro.engine`) goes further and replaces the per-path ranking
        with a precomputed position table.
        """
        indices = np.fromiter(
            (self._ordering.index(path) for path in paths), dtype=np.int64
        )
        return self._histogram.estimate_batch(indices)

    def estimate_indices(self, indices) -> np.ndarray:
        """Vectorised estimates for raw domain positions (bypassing ranking)."""
        return self._histogram.estimate_batch(indices)

    def total_sse(self) -> float:
        """Total within-bucket SSE of the underlying histogram."""
        return self._histogram.total_sse()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<LabelPathHistogram method={self.method_name!r} "
            f"kind={self._histogram.kind!r} buckets={self.bucket_count}>"
        )


def build_histogram(
    catalog: SelectivityCatalog,
    ordering: Ordering,
    *,
    kind: str = VOptimalHistogram.kind,
    bucket_count: int,
    frequencies: Optional[Union[np.ndarray, SparseFrequencies]] = None,
    **kwargs,
) -> LabelPathHistogram:
    """Build a :class:`LabelPathHistogram` from a catalog under an ordering.

    Parameters
    ----------
    catalog / ordering:
        The true selectivities and the domain ordering to lay them out in.
    kind:
        Histogram kind (default ``"v-optimal"``, the paper's choice).
    bucket_count:
        Number of buckets ``β``.
    frequencies:
        Optional pre-computed output of :func:`domain_frequencies` (dense
        array or sparse view), so sweeps that vary only ``bucket_count``
        avoid recomputing the layout.
    kwargs:
        Extra keyword arguments passed to the histogram constructor (e.g.
        ``strategy="greedy"`` for :class:`VOptimalHistogram`).
    """
    if frequencies is None:
        frequencies = domain_frequencies(catalog, ordering)
    histogram = make_histogram(frequencies, kind, bucket_count, **kwargs)
    return LabelPathHistogram(ordering, histogram)
