"""End-biased histogram.

The ``β - 1`` highest-frequency positions are stored exactly in singleton
buckets; everything else falls into shared buckets.  End-biased histograms
are the classical answer to heavy-tailed frequency distributions and provide
a useful contrast to domain reordering: they spend budget on outliers instead
of rearranging the domain.
"""

from __future__ import annotations

import numpy as np

from repro.histogram.base import Histogram
from repro.histogram.sparse import SparseFrequencies, absent_positions

__all__ = ["EndBiasedHistogram"]


class EndBiasedHistogram(Histogram):
    """Store the top ``β - 1`` frequencies exactly; bucket the rest by position."""

    kind = "end-biased"

    def _boundaries(self, frequencies: np.ndarray, bucket_count: int) -> list[int]:
        domain = int(frequencies.size)
        if bucket_count == 1 or domain == 1:
            return [0]
        # Each singleton can add up to two boundaries (its start and the start
        # of the following remainder bucket), so cap the number of singletons
        # at (β - 1) / 2 to stay within the requested bucket budget.
        singleton_budget = min(max(1, (bucket_count - 1) // 2), domain - 1)
        # Highest frequencies first; ties resolved by position (ascending).
        order = np.lexsort((np.arange(domain), -frequencies))
        singletons = sorted(int(position) for position in order[:singleton_budget])
        return self._starts_for_singletons(singletons, domain)

    def _boundaries_sparse(
        self, frequencies: SparseFrequencies, bucket_count: int
    ) -> list[int]:
        # Every nonzero outranks every implicit zero, so the dense ranking —
        # descending frequency, ties by ascending position — is the nonzeros
        # in that order followed by the zero positions ascending; only a
        # budget larger than nnz ever reaches the zeros.
        domain = frequencies.size
        if bucket_count == 1 or domain == 1:
            return [0]
        singleton_budget = min(max(1, (bucket_count - 1) // 2), domain - 1)
        positions = frequencies.positions
        order = np.lexsort((positions, -frequencies.values))
        top = [int(position) for position in positions[order][:singleton_budget]]
        needed = singleton_budget - len(top)
        if needed > 0:
            top.extend(absent_positions(positions, domain, needed))
        return self._starts_for_singletons(sorted(top), domain)

    @staticmethod
    def _starts_for_singletons(singletons: list[int], domain: int) -> list[int]:
        starts: set[int] = {0}
        for position in singletons:
            starts.add(position)
            if position + 1 < domain:
                starts.add(position + 1)
        return sorted(starts)
