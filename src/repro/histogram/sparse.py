"""Sparse frequency-vector view for histogram construction.

:class:`SparseFrequencies` is the O(nnz) stand-in for the dense frequency
vector the histogram builders consume: the sorted positions of the nonzero
frequencies plus their values, with every other position an *implicit zero*.
Real label-path distributions are overwhelmingly zero (the committed
benchmark graph stores 1,648 nonzero paths in a 1,111,110-entry domain), so
a histogram built from the nonzero stream touches kilobytes where the dense
path touches megabytes — and for ``|L|=20, k=6`` (a 64M-entry domain) the
dense path cannot run at all.

Every sparse boundary algorithm in this package is written to reproduce the
dense algorithm's arithmetic exactly — the same float expressions evaluated
at the same decision points — so the resulting bucket boundaries are
byte-identical to a dense build over the scattered vector.  (For the
integer-valued frequencies a selectivity catalog produces, all sums are
exact in float64, so bucket statistics agree bitwise too.)
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import HistogramError

__all__ = ["SparseFrequencies", "absent_positions"]


class SparseFrequencies:
    """Nonzero ``(position, value)`` view of a mostly-zero frequency vector.

    Parameters
    ----------
    positions:
        Strictly increasing ``int64`` positions of the nonzero entries in
        the (virtual) dense vector.
    values:
        The strictly positive frequencies at those positions, aligned.
    size:
        The dense domain size ``n`` (``positions`` must stay below it).
    """

    __slots__ = ("_positions", "_values", "_size")

    def __init__(self, positions, values, size: int) -> None:
        positions = np.ascontiguousarray(positions, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=float)
        if int(size) < 1:
            raise HistogramError("sparse frequencies need a domain size >= 1")
        if positions.ndim != 1 or positions.shape != values.shape:
            raise HistogramError(
                "sparse frequencies need aligned one-dimensional "
                "(positions, values) arrays"
            )
        if positions.size:
            if int(positions.min()) < 0 or int(positions.max()) >= int(size):
                raise HistogramError(
                    f"sparse positions outside the domain [0, {int(size)})"
                )
            if not bool(np.all(np.diff(positions) > 0)):
                raise HistogramError(
                    "sparse positions must be strictly increasing"
                )
            if not bool(np.all(values > 0)):
                raise HistogramError(
                    "sparse values must be strictly positive (zeros are "
                    "implicit, negatives are not frequencies)"
                )
        self._positions = positions
        self._values = values
        self._size = int(size)
        self._positions.setflags(write=False)
        self._values.setflags(write=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """Sorted nonzero positions (read-only)."""
        return self._positions

    @property
    def values(self) -> np.ndarray:
        """Nonzero frequencies, aligned with :attr:`positions` (read-only)."""
        return self._values

    @property
    def size(self) -> int:
        """The dense domain size ``n``."""
        return self._size

    @property
    def nnz(self) -> int:
        """Number of nonzero entries."""
        return int(self._positions.size)

    @property
    def density(self) -> float:
        """``nnz / n``."""
        return self.nnz / self._size

    def __len__(self) -> int:
        return self._size

    def value_at(self, indices) -> np.ndarray:
        """Frequencies at a batch of dense positions (zeros included)."""
        queries = np.ascontiguousarray(indices, dtype=np.int64)
        out = np.zeros(queries.shape, dtype=float)
        if self._positions.size == 0:
            return out
        found = np.minimum(
            np.searchsorted(self._positions, queries), self._positions.size - 1
        )
        hit = self._positions[found] == queries
        out[hit] = self._values[found[hit]]
        return out

    def toarray(self) -> np.ndarray:
        """Materialise the dense float vector (O(n) memory — use sparingly)."""
        dense = np.zeros(self._size, dtype=float)
        dense[self._positions] = self._values
        return dense

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<SparseFrequencies n={self._size} nnz={self.nnz} "
            f"density={self.density:.2e}>"
        )


def absent_positions(
    present: np.ndarray, limit: int, count: int
) -> Iterator[int]:
    """The smallest ``count`` integers in ``[0, limit)`` not in ``present``.

    ``present`` must be sorted ascending.  This reproduces, lazily, the
    order in which the dense tie-breaking rules visit zero-frequency
    positions (ascending position) without enumerating the whole domain —
    the walk skips over ``present`` and stops after ``count`` hits.
    """
    emitted = 0
    pointer = 0
    candidate = 0
    present_size = int(present.size)
    while emitted < count and candidate < limit:
        if pointer < present_size and int(present[pointer]) == candidate:
            pointer += 1
            candidate += 1
            continue
        yield candidate
        emitted += 1
        candidate += 1
