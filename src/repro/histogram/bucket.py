"""Histogram buckets.

A bucket covers a half-open index interval ``[start, end)`` of the ordered
histogram domain and stores the aggregate statistics needed both to answer
point/range estimates and to report quality metrics (sum of squared error
within the bucket — the quantity the V-optimal histogram minimises).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import HistogramError

__all__ = ["Bucket"]


@dataclass(frozen=True)
class Bucket:
    """Aggregate statistics of one histogram bucket.

    Attributes
    ----------
    start, end:
        Half-open index interval ``[start, end)`` of the ordered domain the
        bucket covers.
    total:
        Sum of the frequencies of the positions in the bucket.
    squared_total:
        Sum of squared frequencies (used to compute the bucket's SSE).
    minimum, maximum:
        Smallest / largest frequency in the bucket (diagnostics and
        end-biased/MaxDiff construction).
    """

    start: int
    end: int
    total: float
    squared_total: float
    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise HistogramError(
                f"bucket interval [{self.start}, {self.end}) must be non-empty"
            )

    @property
    def width(self) -> int:
        """Number of domain positions the bucket covers."""
        return self.end - self.start

    @property
    def average(self) -> float:
        """Average frequency — the bucket's point estimate under uniformity."""
        return self.total / self.width

    @property
    def variance(self) -> float:
        """Population variance of the frequencies inside the bucket."""
        mean = self.average
        return max(0.0, self.squared_total / self.width - mean * mean)

    @property
    def sse(self) -> float:
        """Sum of squared errors of the bucket (``width * variance``)."""
        return max(0.0, self.squared_total - self.total * self.total / self.width)

    def contains(self, index: int) -> bool:
        """Whether domain position ``index`` falls inside the bucket."""
        return self.start <= index < self.end

    @classmethod
    def from_frequencies(cls, start: int, frequencies) -> "Bucket":
        """Build a bucket covering ``[start, start + len(frequencies))``."""
        values = [float(value) for value in frequencies]
        if not values:
            raise HistogramError("cannot build a bucket from an empty frequency slice")
        return cls(
            start=start,
            end=start + len(values),
            total=sum(values),
            squared_total=sum(value * value for value in values),
            minimum=min(values),
            maximum=max(values),
        )
