"""Histograms over ordered label-path domains."""

from repro.histogram.base import Histogram, frequencies_to_array
from repro.histogram.bucket import Bucket
from repro.histogram.builder import (
    HISTOGRAM_KINDS,
    LabelPathHistogram,
    build_histogram,
    domain_frequencies,
    make_histogram,
)
from repro.histogram.endbiased import EndBiasedHistogram
from repro.histogram.equidepth import EquiDepthHistogram
from repro.histogram.equiwidth import EquiWidthHistogram
from repro.histogram.maxdiff import MaxDiffHistogram
from repro.histogram.sparse import SparseFrequencies
from repro.histogram.serialization import (
    histogram_from_dict,
    histogram_to_dict,
    load_histogram,
    save_histogram,
)
from repro.histogram.vopt import EXACT_DOMAIN_LIMIT, VOptimalHistogram

__all__ = [
    "EXACT_DOMAIN_LIMIT",
    "HISTOGRAM_KINDS",
    "Bucket",
    "EndBiasedHistogram",
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "Histogram",
    "LabelPathHistogram",
    "MaxDiffHistogram",
    "SparseFrequencies",
    "VOptimalHistogram",
    "build_histogram",
    "domain_frequencies",
    "frequencies_to_array",
    "histogram_from_dict",
    "histogram_to_dict",
    "load_histogram",
    "make_histogram",
    "save_histogram",
]
