"""Experiment harnesses — one module per paper table/figure plus ablations."""

from repro.experiments.ablation_baselines import (
    BaselineAblationResult,
    run_baseline_ablation,
)
from repro.experiments.ablation_histograms import (
    HistogramAblationResult,
    run_histogram_ablation,
)
from repro.experiments.ablation_vopt import (
    VOptAblationResult,
    run_vopt_ablation,
    synthetic_distribution,
)
from repro.experiments.extension_base_l2 import (
    ExtensionResult,
    L2SumBasedOrdering,
    run_extension_base_l2,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.ordering_example import (
    EXAMPLE_CARDINALITIES,
    EXAMPLE_MAX_LENGTH,
    OrderingExampleResult,
    run_ordering_example,
)
from repro.experiments.reporting import format_records, format_table, pivot
from repro.experiments.table3 import Table3Row, run_table3
from repro.experiments.table4 import Table4Result, default_bucket_counts, run_table4

__all__ = [
    "EXAMPLE_CARDINALITIES",
    "EXAMPLE_MAX_LENGTH",
    "BaselineAblationResult",
    "ExtensionResult",
    "Figure1Result",
    "Figure2Result",
    "HistogramAblationResult",
    "L2SumBasedOrdering",
    "OrderingExampleResult",
    "Table3Row",
    "Table4Result",
    "VOptAblationResult",
    "default_bucket_counts",
    "format_records",
    "format_table",
    "pivot",
    "run_baseline_ablation",
    "run_extension_base_l2",
    "run_figure1",
    "run_figure2",
    "run_histogram_ablation",
    "run_ordering_example",
    "run_table3",
    "run_table4",
    "run_vopt_ablation",
    "synthetic_distribution",
]
