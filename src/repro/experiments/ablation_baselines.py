"""Ablation C — histogram estimator vs synopsis-free baselines.

Positions the paper's approach against the estimators a system could use
without building a path histogram at all:

* the **independence** assumption (per-label counts only),
* an **order-1 Markov** model over adjacent labels (length-2 statistics),
* online **sampling** (no synopsis, per-query graph walks),
* the **exact oracle** (stores every selectivity — the memory ceiling).

For each the experiment reports the mean Equation-6 error over the full
domain together with the number of stored scalars, so accuracy can be read
against memory budget; the sum-based V-optimal histogram is included at a
matching budget for a fair comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.estimation.baselines import IndependenceEstimator, MarkovEstimator
from repro.estimation.errors import mean_error_rate
from repro.estimation.estimator import ExactOracle, PathSelectivityEstimator
from repro.estimation.sampling import SamplingEstimator
from repro.estimation.workload import full_domain_workload
from repro.graph.digraph import LabeledDiGraph
from repro.paths.catalog import SelectivityCatalog

__all__ = ["BaselineAblationResult", "run_baseline_ablation"]


@dataclass
class BaselineAblationResult:
    """Accuracy and memory footprint of every estimator on one dataset."""

    dataset: str
    max_length: int
    records: list[dict[str, object]] = field(default_factory=list)

    def mean_error(self, method: str) -> float:
        """Mean error of one estimator (NaN if it was not evaluated)."""
        for record in self.records:
            if record["method"] == method:
                return float(record["mean_error_rate"])
        return float("nan")

    def storage(self, method: str) -> int:
        """Stored scalars of one estimator (-1 if it was not evaluated)."""
        for record in self.records:
            if record["method"] == method:
                return int(record["stored_scalars"])
        return -1


def run_baseline_ablation(
    *,
    dataset: str = "moreno-health",
    scale: float = 0.03,
    max_length: int = 3,
    histogram_buckets: Optional[int] = None,
    sample_size: int = 100,
    graph: Optional[LabeledDiGraph] = None,
    catalog: Optional[SelectivityCatalog] = None,
    workload: Optional[Sequence] = None,
) -> BaselineAblationResult:
    """Compare the histogram estimator with the synopsis-free baselines.

    ``histogram_buckets`` defaults to a budget matching the Markov baseline
    (``(|L| + |L|²) / 2`` buckets, i.e. the same number of stored scalars).
    """
    if graph is None:
        graph = load_dataset(dataset, scale=scale)
    if catalog is None:
        catalog = SelectivityCatalog.from_graph(graph, max_length)
    queries = list(workload) if workload is not None else full_domain_workload(catalog)
    label_count = len(catalog.labels)
    if histogram_buckets is None:
        histogram_buckets = max(2, (label_count + label_count**2) // 2)
    histogram_buckets = min(histogram_buckets, catalog.domain_size)

    estimators = {
        "sum-based histogram": PathSelectivityEstimator.build(
            catalog, ordering="sum-based", bucket_count=histogram_buckets
        ),
        "independence": IndependenceEstimator.from_catalog(catalog, graph.vertex_count),
        "markov-1": MarkovEstimator(catalog),
        "sampling": SamplingEstimator(graph, sample_size=sample_size, seed=1),
        "exact oracle": ExactOracle(catalog),
    }

    result = BaselineAblationResult(dataset=graph.name or dataset, max_length=catalog.max_length)
    for name, estimator in estimators.items():
        pairs = [
            (max(0.0, float(estimator.estimate(path))), float(catalog.selectivity(path)))
            for path in queries
        ]
        result.records.append(
            {
                "dataset": result.dataset,
                "method": name,
                "mean_error_rate": mean_error_rate(pairs),
                "stored_scalars": estimator.storage_entries(),
            }
        )
    return result
