"""Extension — richer base set ``B = L2`` (the paper's future-work direction).

Section 5 of the paper proposes extending the ordering framework with richer
base sets such as ``L2`` to capture correlations between adjacent labels.
This experiment implements a *sum-based ordering over the L2 base set*: a
label path is greedily decomposed into pieces of length ≤ 2 (the paper's
Section 3.1 example), each piece's rank is its position in the
cardinality-sorted list of base paths, and paths are ordered by
(number of pieces, summed piece rank, piece multiset, permutation) — the
direct analogue of the length-≤-1 sum-based ordering.

The experiment compares the estimation accuracy of this L2-based ordering
with the paper's L1 sum-based ordering on a correlated dataset, where the
pair-aware ranks should (and do) help.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.estimation.estimator import PathSelectivityEstimator
from repro.estimation.workload import full_domain_workload
from repro.datasets.registry import load_dataset
from repro.histogram.builder import domain_frequencies
from repro.ordering.base import Ordering
from repro.ordering.combinatorics import rank_permutation
from repro.ordering.ranking import CardinalityRanking
from repro.ordering.registry import make_ordering
from repro.paths.catalog import SelectivityCatalog
from repro.paths.label_path import LabelPath
from repro.paths.splitting import GreedySplitter, length_bounded_base_set

__all__ = ["L2SumBasedOrdering", "ExtensionResult", "run_extension_base_l2"]


class L2SumBasedOrdering(Ordering):
    """Sum-based ordering whose base set is ``L2`` (paths of length ≤ 2).

    Unlike the closed-form L1 ordering, the L2 variant materialises the
    domain: each path is decomposed with the greedy splitter, scored by
    ``(length, piece-rank sum, sorted piece ranks, permutation rank)`` and the
    whole domain is sorted by that key.  This trades memory for the richer
    ranking — acceptable for an exploratory extension (and an interesting
    data point on the cost of richer base sets, reported by the experiment).
    """

    name = "sum-l2"

    def __init__(self, catalog: SelectivityCatalog) -> None:
        ranking = CardinalityRanking.from_catalog(catalog)
        super().__init__(ranking, catalog.max_length)
        base_set = length_bounded_base_set(catalog.labels, min(2, catalog.max_length))
        self._splitter = GreedySplitter(base_set)
        # Rank base paths by their true cardinality (ascending), ties by label.
        ordered_base = sorted(
            base_set.members,
            key=lambda path: (catalog.selectivity(path), path.labels),
        )
        self._base_rank = {path: rank for rank, path in enumerate(ordered_base, start=1)}
        # Materialise the full domain order.
        from repro.paths.enumeration import enumerate_label_paths

        def sort_key(path: LabelPath) -> tuple:
            """Sum-based key over the path's base-piece ranks."""
            pieces = self._splitter.split(path)
            ranks = [self._base_rank[piece] for piece in pieces]
            return (
                path.length,
                len(ranks),
                sum(ranks),
                tuple(sorted(ranks)),
                rank_permutation(ranks),
            )

        ordered = sorted(
            enumerate_label_paths(catalog.labels, catalog.max_length), key=sort_key
        )
        self._path_at = ordered
        self._index_of = {path: index for index, path in enumerate(ordered)}

    @property
    def full_name(self) -> str:
        """Human-readable ordering name used in reports and figures."""
        return "sum-based-L2"

    def index(self, path) -> int:
        """Position of ``path`` in the L2 sum-based domain order."""
        label_path = self._validate_path(path)
        return self._index_of[label_path]

    def path(self, index: int) -> LabelPath:
        """The path at ``index`` of the L2 sum-based domain order."""
        index = self._validate_index(index)
        return self._path_at[index]

    def piece_ranks(self, path) -> list[int]:
        """The ranks of the greedy L2 decomposition of ``path`` (diagnostics)."""
        return [self._base_rank[piece] for piece in self._splitter.split(path)]


@dataclass
class ExtensionResult:
    """Accuracy of L1 vs L2 sum-based orderings on one dataset."""

    dataset: str
    max_length: int
    records: list[dict[str, object]] = field(default_factory=list)

    def mean_error(self, method: str) -> float:
        """Mean error of one method averaged across the β sweep."""
        values = [
            float(record["mean_error_rate"])
            for record in self.records
            if record["method"] == method
        ]
        return sum(values) / len(values) if values else float("nan")


def run_extension_base_l2(
    *,
    dataset: str = "dbpedia",
    scale: float = 0.01,
    max_length: int = 3,
    bucket_counts: Sequence[int] = (8, 32, 128),
    catalog: Optional[SelectivityCatalog] = None,
) -> ExtensionResult:
    """Compare the L1 and L2 sum-based orderings on a correlated dataset."""
    if catalog is None:
        graph = load_dataset(dataset, scale=scale)
        catalog = SelectivityCatalog.from_graph(graph, max_length)
    workload = full_domain_workload(catalog)
    orderings: dict[str, Ordering] = {
        "sum-based": make_ordering("sum-based", catalog=catalog),
        "sum-based-L2": L2SumBasedOrdering(catalog),
    }
    result = ExtensionResult(dataset=dataset, max_length=catalog.max_length)
    for method, ordering in orderings.items():
        frequencies = domain_frequencies(catalog, ordering)
        for bucket_count in bucket_counts:
            effective = min(bucket_count, ordering.size)
            estimator = PathSelectivityEstimator.build(
                catalog,
                ordering=ordering,
                bucket_count=effective,
                frequencies=frequencies,
            )
            report = estimator.evaluate(catalog, workload)
            result.records.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "buckets": bucket_count,
                    "mean_error_rate": report.mean_error_rate,
                }
            )
    return result
