"""Reproduction of Figure 1 — the raw data distribution and its equi-width histogram.

Figure 1 of the paper plots, for the Moreno Health dataset with ``k = 3``,
the number of matching paths of every label path (the black distribution)
in the native ``num-alph`` order, together with an equi-width histogram over
that order (the red step function).  The figure motivates the whole paper:
in the native order the distribution is wildly non-monotone, so equal-width
buckets mix large and small frequencies and estimate poorly.

The harness returns the series needed to redraw the figure (frequencies per
index, bucket boundaries and bucket averages) plus summary numbers used in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.datasets.registry import load_dataset
from repro.graph.digraph import LabeledDiGraph
from repro.histogram.builder import domain_frequencies, make_histogram
from repro.ordering.registry import make_ordering
from repro.paths.catalog import SelectivityCatalog

__all__ = ["Figure1Result", "run_figure1"]


@dataclass
class Figure1Result:
    """Everything needed to redraw Figure 1."""

    dataset: str
    max_length: int
    bucket_count: int
    ordering: str
    #: Label path (string form) at every domain index, in order.
    domain_paths: list[str] = field(default_factory=list)
    #: True selectivity at every domain index (the black curve).
    frequencies: list[float] = field(default_factory=list)
    #: ``(start, end, average)`` per bucket (the red step function).
    buckets: list[tuple[int, int, float]] = field(default_factory=list)

    @property
    def domain_size(self) -> int:
        """Number of label paths in the domain (258 for Moreno at k=3)."""
        return len(self.frequencies)

    @property
    def max_frequency(self) -> float:
        """The tallest spike of the distribution."""
        return max(self.frequencies, default=0.0)

    def as_series(self) -> dict[str, object]:
        """Flat dict of the plotted series (for JSON export)."""
        return {
            "dataset": self.dataset,
            "k": self.max_length,
            "buckets": self.bucket_count,
            "ordering": self.ordering,
            "paths": self.domain_paths,
            "frequencies": self.frequencies,
            "histogram": [list(bucket) for bucket in self.buckets],
        }


def run_figure1(
    *,
    scale: float = 0.05,
    max_length: int = 3,
    bucket_count: int = 16,
    ordering_name: str = "num-alph",
    histogram_kind: str = "equi-width",
    graph: Optional[LabeledDiGraph] = None,
    catalog: Optional[SelectivityCatalog] = None,
) -> Figure1Result:
    """Recompute the Figure 1 series on the Moreno Health stand-in.

    A pre-built ``graph`` or ``catalog`` can be supplied to skip generation
    (the benchmark harness reuses one catalog across repetitions).
    """
    if catalog is None:
        if graph is None:
            graph = load_dataset("moreno-health", scale=scale)
        catalog = SelectivityCatalog.from_graph(graph, max_length)
    ordering = make_ordering(ordering_name, catalog=catalog)
    frequencies = domain_frequencies(catalog, ordering)
    histogram = make_histogram(frequencies, histogram_kind, bucket_count)
    return Figure1Result(
        dataset=catalog.graph_name or "moreno-health",
        max_length=max_length,
        bucket_count=histogram.bucket_count,
        ordering=ordering.full_name,
        domain_paths=[str(ordering.path(i)) for i in range(ordering.size)],
        frequencies=[float(value) for value in np.asarray(frequencies)],
        buckets=[
            (bucket.start, bucket.end, bucket.average) for bucket in histogram.buckets
        ],
    )
