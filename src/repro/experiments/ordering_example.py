"""Reproduction of the paper's worked example (Section 3.4, Tables 1 and 2).

The example uses an artificial dataset with three edge labels "1", "2", "3"
whose cardinalities are 20, 100 and 80, and lists, for ``k = 2``:

* Table 1 — the summed rank of every label path under the cardinality
  ranking;
* Table 2 — the positional index of every label path under each of the five
  ordering methods.

This experiment regenerates both tables from the library and is asserted
*exactly* in the test-suite, which pins the reproduction to the paper's own
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ordering.registry import PAPER_ORDERINGS, make_ordering
from repro.ordering.sum_based import SumBasedOrdering

__all__ = [
    "EXAMPLE_CARDINALITIES",
    "EXAMPLE_MAX_LENGTH",
    "OrderingExampleResult",
    "run_ordering_example",
]

#: The worked example's label cardinalities (Section 3.4).
EXAMPLE_CARDINALITIES: dict[str, int] = {"1": 20, "2": 100, "3": 80}

#: The worked example's maximum path length.
EXAMPLE_MAX_LENGTH = 2


@dataclass
class OrderingExampleResult:
    """Both tables of the worked example."""

    summed_ranks: dict[str, int] = field(default_factory=dict)
    orderings: dict[str, list[str]] = field(default_factory=dict)

    def table1_rows(self) -> list[dict[str, object]]:
        """Rows shaped like the paper's Table 1 (label path, summed rank)."""
        return [
            {"Label Path": path, "Summed Rank": rank}
            for path, rank in self.summed_ranks.items()
        ]

    def table2_rows(self) -> list[dict[str, object]]:
        """Rows shaped like the paper's Table 2 (method, paths by index)."""
        return [
            {"Method": method, **{str(i): path for i, path in enumerate(paths)}}
            for method, paths in self.orderings.items()
        ]


def run_ordering_example() -> OrderingExampleResult:
    """Regenerate Tables 1 and 2 of the paper from the library."""
    labels = sorted(EXAMPLE_CARDINALITIES)
    result = OrderingExampleResult()

    sum_based = make_ordering(
        "sum-based",
        labels=labels,
        max_length=EXAMPLE_MAX_LENGTH,
        cardinalities=EXAMPLE_CARDINALITIES,
    )
    assert isinstance(sum_based, SumBasedOrdering)

    # Table 1: summed ranks in the paper's listing order (num-alph order).
    num_alph = make_ordering(
        "num-alph", labels=labels, max_length=EXAMPLE_MAX_LENGTH
    )
    for index in range(num_alph.size):
        path = num_alph.path(index)
        result.summed_ranks[str(path)] = sum_based.summed_rank(path)

    # Table 2: the domain listed in index order under every ordering method.
    for method in PAPER_ORDERINGS:
        ordering = make_ordering(
            method,
            labels=labels,
            max_length=EXAMPLE_MAX_LENGTH,
            cardinalities=EXAMPLE_CARDINALITIES,
        )
        result.orderings[method] = [str(ordering.path(i)) for i in range(ordering.size)]
    return result
