"""Reproduction of Figure 2 — mean estimation error per ordering method.

Figure 2 of the paper plots, for each of the four datasets and for several
``(k, β)`` combinations, the mean error rate (Equation 6) of a V-optimal
histogram built under each of the five ordering methods.  The headline
findings the reproduction must show:

* the sum-based ordering achieves the lowest error, with the largest margin
  on the synthetic datasets and at small ``β``;
* the cardinality-ranked variants (num-card, lex-card) beat their
  alphabetical counterparts;
* errors shrink for every method as ``β`` grows.

The harness sweeps datasets × k × β × methods and returns flat records;
``Figure2Result.series()`` groups them the way the figure panels do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.datasets.registry import available_datasets, load_dataset
from repro.estimation.evaluation import SweepResult, run_sweep
from repro.experiments.reporting import format_table, pivot
from repro.ordering.registry import PAPER_ORDERINGS
from repro.paths.catalog import SelectivityCatalog

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """All sweep records of the Figure 2 reproduction."""

    scale: float
    max_lengths: list[int]
    bucket_fractions: list[float]
    results: list[SweepResult] = field(default_factory=list)

    def records(self) -> list[dict[str, object]]:
        """Flat dict records (one per dataset × k × β × method)."""
        return [result.as_row() for result in self.results]

    def series(self, dataset: str, max_length: int) -> list[dict[str, object]]:
        """One figure panel: rows = β, columns = methods, values = mean error."""
        selected = [
            result.as_row()
            for result in self.results
            if result.dataset == dataset and result.max_length == max_length
        ]
        if not selected:
            return []
        headers, rows = pivot(
            selected, row_key="buckets", column_key="method", value_key="mean_error_rate"
        )
        return [dict(zip(headers, row)) for row in rows]

    def render(self, dataset: str, max_length: int) -> str:
        """One panel as aligned text."""
        selected = [
            result.as_row()
            for result in self.results
            if result.dataset == dataset and result.max_length == max_length
        ]
        if not selected:
            return "(no records)"
        headers, rows = pivot(
            selected, row_key="buckets", column_key="method", value_key="mean_error_rate"
        )
        return format_table(headers, rows, float_digits=4)

    def mean_error_by_method(self, dataset: Optional[str] = None) -> dict[str, float]:
        """Mean error rate per method, averaged over every (k, β) cell."""
        accumulator: dict[str, list[float]] = {}
        for result in self.results:
            if dataset is not None and result.dataset != dataset:
                continue
            accumulator.setdefault(result.method, []).append(result.mean_error_rate)
        return {
            method: sum(values) / len(values)
            for method, values in accumulator.items()
            if values
        }


def run_figure2(
    *,
    datasets: Sequence[str] = (),
    scale: float = 0.02,
    max_lengths: Sequence[int] = (2, 3),
    bucket_fractions: Sequence[float] = (0.02, 0.05, 0.1, 0.25),
    methods: Sequence[str] = PAPER_ORDERINGS,
    include_ideal: bool = False,
    catalogs: Optional[dict[str, SelectivityCatalog]] = None,
) -> Figure2Result:
    """Run the accuracy sweep across datasets, path lengths and bucket counts.

    Parameters
    ----------
    datasets:
        Dataset names (defaults to all four of Table 3).
    scale:
        Dataset shrink factor; the error-rate *ordering* of methods is stable
        across scales, which is what the reproduction asserts.
    max_lengths:
        The ``k`` values to sweep (the paper uses up to 6; defaults stay
        small so the full sweep runs in seconds).
    bucket_fractions:
        ``β`` expressed as a fraction of the domain size ``|Lk|`` so the same
        relative budgets are used for every ``k``.
    include_ideal:
        Also evaluate the ideal ordering as an upper-bound baseline.
    catalogs:
        Optional pre-built catalogs keyed by dataset name (must cover the
        largest ``k``); built on demand otherwise.
    """
    names = tuple(datasets) if datasets else available_datasets()
    result = Figure2Result(
        scale=scale,
        max_lengths=list(max_lengths),
        bucket_fractions=list(bucket_fractions),
    )
    for name in names:
        base_catalog: Optional[SelectivityCatalog] = None
        if catalogs is not None and name in catalogs:
            base_catalog = catalogs[name]
        else:
            graph = load_dataset(name, scale=scale)
            base_catalog = SelectivityCatalog.from_graph(graph, max(max_lengths))
        for max_length in max_lengths:
            catalog = (
                base_catalog
                if base_catalog.max_length == max_length
                else base_catalog.restrict(max_length)
            )
            domain = catalog.domain_size
            bucket_counts = sorted(
                {max(2, min(domain, int(round(domain * fraction)))) for fraction in bucket_fractions}
            )
            result.results.extend(
                run_sweep(
                    catalog,
                    dataset_name=name,
                    methods=methods,
                    bucket_counts=bucket_counts,
                    include_ideal=include_ideal,
                )
            )
    return result
