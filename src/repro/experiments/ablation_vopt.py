"""Ablation B — exact vs greedy V-optimal construction.

The reproduction substitutes a greedy-split approximation for the exact
V-optimal dynamic program on large domains (DESIGN.md, substitutions table).
This ablation quantifies the substitution: for a range of synthetic frequency
distributions and bucket budgets it compares the total within-bucket SSE and
the resulting mean estimation error of the two strategies, and reports the
greedy/exact ratios (1.0 = identical quality).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.estimation.errors import mean_error_rate
from repro.histogram.vopt import VOptimalHistogram

__all__ = ["VOptAblationResult", "run_vopt_ablation", "synthetic_distribution"]


def synthetic_distribution(kind: str, size: int, *, seed: int = 0) -> np.ndarray:
    """Generate a synthetic frequency vector of the requested shape.

    Kinds: ``"zipf"`` (heavy-tailed, like real path-frequency data),
    ``"steps"`` (piecewise-constant — V-optimal's best case), ``"uniform"``
    (noise around a constant) and ``"sorted-zipf"`` (the ideal-ordering
    layout of the zipf data).
    """
    rng = random.Random(seed)
    if kind == "zipf":
        values = [1.0 / ((rng.randrange(1, size + 1)) ** 0.8) * size for _ in range(size)]
    elif kind == "sorted-zipf":
        values = sorted(
            1.0 / ((rng.randrange(1, size + 1)) ** 0.8) * size for _ in range(size)
        )
    elif kind == "steps":
        values = []
        level = 10.0
        for position in range(size):
            if position % max(1, size // 8) == 0:
                level = rng.uniform(0.0, 100.0)
            values.append(level)
    elif kind == "uniform":
        values = [50.0 + rng.uniform(-5.0, 5.0) for _ in range(size)]
    else:
        raise ValueError(f"unknown synthetic distribution kind: {kind!r}")
    return np.asarray(values, dtype=float)


@dataclass
class VOptAblationResult:
    """Greedy-vs-exact comparison records."""

    records: list[dict[str, object]] = field(default_factory=list)

    def worst_sse_ratio(self) -> float:
        """The largest greedy/exact SSE ratio observed (1.0 = no loss)."""
        ratios = [float(record["sse_ratio"]) for record in self.records]
        return max(ratios) if ratios else float("nan")

    def mean_error_ratio(self) -> float:
        """Mean greedy/exact estimation-error ratio across all cells."""
        ratios = [
            float(record["error_ratio"])
            for record in self.records
            if np.isfinite(record["error_ratio"])
        ]
        return sum(ratios) / len(ratios) if ratios else float("nan")


def run_vopt_ablation(
    *,
    domain_size: int = 256,
    bucket_counts: Sequence[int] = (4, 16, 64),
    kinds: Sequence[str] = ("zipf", "sorted-zipf", "steps", "uniform"),
    seed: int = 0,
) -> VOptAblationResult:
    """Compare exact and greedy V-optimal construction on synthetic data."""
    result = VOptAblationResult()
    for kind in kinds:
        frequencies = synthetic_distribution(kind, domain_size, seed=seed)
        for bucket_count in bucket_counts:
            exact = VOptimalHistogram(frequencies, bucket_count, strategy="exact")
            greedy = VOptimalHistogram(frequencies, bucket_count, strategy="greedy")
            exact_pairs = [
                (exact.estimate(i), float(frequencies[i])) for i in range(domain_size)
            ]
            greedy_pairs = [
                (greedy.estimate(i), float(frequencies[i])) for i in range(domain_size)
            ]
            exact_error = mean_error_rate(exact_pairs)
            greedy_error = mean_error_rate(greedy_pairs)
            exact_sse = exact.total_sse()
            greedy_sse = greedy.total_sse()
            # Ratios of two numerically-zero values are noise (e.g. both
            # strategies hit an exact partitioning and differ only by float
            # round-off); report 1.0 in that case.
            sse_floor = 1e-9 * float(np.square(frequencies).sum())
            error_floor = 1e-12
            result.records.append(
                {
                    "distribution": kind,
                    "buckets": bucket_count,
                    "exact_sse": exact_sse,
                    "greedy_sse": greedy_sse,
                    "sse_ratio": (greedy_sse / exact_sse)
                    if exact_sse > sse_floor
                    else 1.0,
                    "exact_error": exact_error,
                    "greedy_error": greedy_error,
                    "error_ratio": (greedy_error / exact_error)
                    if exact_error > error_floor
                    else 1.0,
                }
            )
    return result
