"""Plain-text reporting helpers shared by the experiment harnesses.

Every experiment returns structured records; these helpers render them as
aligned text tables so the CLI and the benchmark harnesses can print output
that looks like the paper's tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_records", "pivot"]


def _format_value(value: object, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_digits: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    rendered_rows = [
        [_format_value(value, float_digits) for value in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, object]], *, float_digits: int = 4
) -> str:
    """Render a list of uniform dict records as a table (keys become headers)."""
    if not records:
        return "(no records)"
    headers = list(records[0].keys())
    rows = [[record.get(header, "") for header in headers] for record in records]
    return format_table(headers, rows, float_digits=float_digits)


def pivot(
    records: Sequence[Mapping[str, object]],
    *,
    row_key: str,
    column_key: str,
    value_key: str,
) -> tuple[list[str], list[list[object]]]:
    """Pivot flat records into a (headers, rows) matrix.

    Used to turn sweep results into the paper's presentation shape, e.g. rows
    = bucket counts, columns = ordering methods, values = mean error rate.
    """
    row_values: list[object] = []
    column_values: list[object] = []
    cells: dict[tuple[object, object], object] = {}
    for record in records:
        row_value = record[row_key]
        column_value = record[column_key]
        if row_value not in row_values:
            row_values.append(row_value)
        if column_value not in column_values:
            column_values.append(column_value)
        cells[(row_value, column_value)] = record[value_key]
    headers = [row_key] + [str(value) for value in column_values]
    rows = [
        [row_value] + [cells.get((row_value, column_value), "") for column_value in column_values]
        for row_value in row_values
    ]
    return headers, rows
