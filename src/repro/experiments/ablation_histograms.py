"""Ablation A — histogram type under a fixed ordering.

The paper fixes the histogram type to V-optimal and varies the ordering; this
ablation asks the complementary question: with the ordering fixed, how much
of the quality comes from the histogram type?  It evaluates equi-width,
equi-depth, MaxDiff, end-biased and V-optimal histograms under both the
native ``num-alph`` ordering and the ``sum-based`` ordering, quantifying how
much a good ordering narrows the gap between cheap and expensive histograms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.estimation.estimator import PathSelectivityEstimator
from repro.estimation.workload import full_domain_workload
from repro.histogram.builder import HISTOGRAM_KINDS, domain_frequencies
from repro.ordering.registry import make_ordering
from repro.paths.catalog import SelectivityCatalog

__all__ = ["HistogramAblationResult", "run_histogram_ablation"]


@dataclass
class HistogramAblationResult:
    """Mean error per (ordering, histogram kind, β) cell."""

    dataset: str
    max_length: int
    records: list[dict[str, object]] = field(default_factory=list)

    def best_kind(self, method: str) -> str:
        """The histogram kind with the lowest mean error under ``method``."""
        candidates = [r for r in self.records if r["method"] == method]
        best = min(candidates, key=lambda r: r["mean_error_rate"])
        return str(best["histogram"])

    def mean_error(self, method: str, kind: str) -> float:
        """Mean error of one (ordering, histogram kind) pair across β values."""
        values = [
            float(r["mean_error_rate"])
            for r in self.records
            if r["method"] == method and r["histogram"] == kind
        ]
        return sum(values) / len(values) if values else float("nan")


def run_histogram_ablation(
    *,
    dataset: str = "moreno-health",
    scale: float = 0.03,
    max_length: int = 3,
    bucket_counts: Sequence[int] = (8, 32, 128),
    methods: Sequence[str] = ("num-alph", "sum-based"),
    kinds: Optional[Sequence[str]] = None,
    catalog: Optional[SelectivityCatalog] = None,
) -> HistogramAblationResult:
    """Evaluate every histogram kind under the chosen orderings."""
    if catalog is None:
        graph = load_dataset(dataset, scale=scale)
        catalog = SelectivityCatalog.from_graph(graph, max_length)
    histogram_kinds = list(kinds) if kinds is not None else sorted(HISTOGRAM_KINDS)
    workload = full_domain_workload(catalog)
    result = HistogramAblationResult(dataset=dataset, max_length=catalog.max_length)
    for method in methods:
        ordering = make_ordering(method, catalog=catalog)
        frequencies = domain_frequencies(catalog, ordering)
        for kind in histogram_kinds:
            for bucket_count in bucket_counts:
                effective = min(bucket_count, ordering.size)
                estimator = PathSelectivityEstimator.build(
                    catalog,
                    ordering=ordering,
                    histogram_kind=kind,
                    bucket_count=effective,
                    frequencies=frequencies,
                )
                report = estimator.evaluate(catalog, workload)
                result.records.append(
                    {
                        "dataset": dataset,
                        "method": method,
                        "histogram": kind,
                        "buckets": bucket_count,
                        "mean_error_rate": report.mean_error_rate,
                        "mean_estimation_ms": report.mean_estimation_millis,
                    }
                )
    return result
