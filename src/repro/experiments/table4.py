"""Reproduction of Table 4 — average estimation latency per ordering method.

The paper builds one V-optimal histogram per ordering method at ``k = 6``
(domain of 55 996 label paths on the Moreno alphabet), varies the bucket
count ``β`` from 27 993 down to 437 (halving each step), runs its query set
100 times and reports the average estimation time per ordering.  The result:
latency shrinks slightly as ``β`` shrinks, and the sum-based ordering is
roughly 20 % slower than the native orderings because its (un)ranking
function is more expensive.

Our default parameters keep the same structure at a pure-Python-friendly
scale (smaller ``k`` / dataset scale, ``β`` halving from half the domain
size); ``k = 6`` at full scale is supported but slow.  The *shape* — relative
latencies across orderings, and the downward trend in ``β`` — is what the
reproduction checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.estimation.evaluation import SweepResult, run_sweep
from repro.estimation.workload import sampled_workload
from repro.experiments.reporting import format_table, pivot
from repro.graph.digraph import LabeledDiGraph
from repro.ordering.registry import PAPER_ORDERINGS
from repro.paths.catalog import SelectivityCatalog

__all__ = ["Table4Result", "default_bucket_counts", "run_table4"]

#: The paper's Table 4 bucket counts (β halving from 27 993 to 437).
PAPER_BUCKET_COUNTS: tuple[int, ...] = (27993, 13996, 6998, 3499, 1749, 874, 437)


def default_bucket_counts(domain_size: int, steps: int = 7) -> list[int]:
    """β values halving from ``domain_size // 2``, mirroring the paper's series."""
    counts: list[int] = []
    value = max(2, domain_size // 2)
    for _ in range(steps):
        counts.append(value)
        if value <= 2:
            break
        value = max(2, value // 2)
    return counts


@dataclass
class Table4Result:
    """The latency sweep results plus the pivoted Table 4 presentation."""

    dataset: str
    max_length: int
    bucket_counts: list[int]
    results: list[SweepResult]

    def rows(self) -> list[dict[str, object]]:
        """Rows shaped like the paper's Table 4 (β × ordering method, in ms)."""
        records = [result.as_row() for result in self.results]
        headers, rows = pivot(
            records,
            row_key="buckets",
            column_key="method",
            value_key="mean_estimation_ms",
        )
        return [dict(zip(headers, row)) for row in rows]

    def render(self) -> str:
        """The table as aligned text."""
        records = [result.as_row() for result in self.results]
        headers, rows = pivot(
            records,
            row_key="buckets",
            column_key="method",
            value_key="mean_estimation_ms",
        )
        return format_table(headers, rows, float_digits=5)

    def slowdown_of(self, method: str = "sum-based", baseline: str = "num-alph") -> float:
        """Mean latency of ``method`` relative to ``baseline`` (1.2 ≈ 20 % slower)."""
        method_times = [r.mean_estimation_ms for r in self.results if r.method == method]
        base_times = [r.mean_estimation_ms for r in self.results if r.method == baseline]
        if not method_times or not base_times:
            return float("nan")
        return (sum(method_times) / len(method_times)) / (
            sum(base_times) / len(base_times)
        )


def run_table4(
    *,
    dataset: str = "moreno-health",
    scale: float = 0.03,
    max_length: int = 4,
    bucket_counts: Optional[Sequence[int]] = None,
    workload_size: int = 500,
    repetitions: int = 3,
    methods: Sequence[str] = PAPER_ORDERINGS,
    graph: Optional[LabeledDiGraph] = None,
    catalog: Optional[SelectivityCatalog] = None,
    seed: int = 0,
) -> Table4Result:
    """Run the estimation-latency experiment.

    Parameters mirror the paper's setup; the defaults shrink ``k`` and the
    dataset so the run completes in seconds.  Pass ``max_length=6`` and
    ``scale=1.0`` for the paper-scale configuration.
    """
    if catalog is None:
        if graph is None:
            graph = load_dataset(dataset, scale=scale)
        catalog = SelectivityCatalog.from_graph(graph, max_length)
    betas = list(bucket_counts) if bucket_counts is not None else default_bucket_counts(
        catalog.domain_size
    )
    workload = sampled_workload(catalog, workload_size, seed=seed)
    results = run_sweep(
        catalog,
        dataset_name=dataset,
        methods=methods,
        bucket_counts=betas,
        workload=workload,
        repetitions=repetitions,
    )
    return Table4Result(
        dataset=dataset,
        max_length=catalog.max_length,
        bucket_counts=betas,
        results=results,
    )
