"""Reproduction of Table 3 — the dataset summary.

For each of the paper's four datasets the harness reports both the paper's
published statistics and the statistics of the generated stand-in at the
requested scale, so the substitution is auditable at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import available_datasets, dataset_spec, load_dataset
from repro.graph.statistics import summarize_graph

__all__ = ["Table3Row", "run_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One dataset's paper statistics next to its generated stand-in's."""

    dataset: str
    real_world: bool
    paper_label_count: int
    paper_vertex_count: int
    paper_edge_count: int
    generated_label_count: int
    generated_vertex_count: int
    generated_edge_count: int
    scale: float

    def as_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        return {
            "Dataset": self.dataset,
            "Real world data": "yes" if self.real_world else "no",
            "#Edge Labels (paper)": self.paper_label_count,
            "#Vertices (paper)": self.paper_vertex_count,
            "#Edges (paper)": self.paper_edge_count,
            "#Edge Labels (ours)": self.generated_label_count,
            "#Vertices (ours)": self.generated_vertex_count,
            "#Edges (ours)": self.generated_edge_count,
            "scale": self.scale,
        }


def run_table3(*, scale: float = 0.05, datasets: tuple[str, ...] = ()) -> list[Table3Row]:
    """Generate every dataset stand-in and compare it with the paper's Table 3.

    Parameters
    ----------
    scale:
        Shrink factor applied to the generated stand-ins (1.0 = paper sizes).
    datasets:
        Optional subset of dataset names; defaults to all four.
    """
    names = datasets if datasets else available_datasets()
    rows: list[Table3Row] = []
    for name in names:
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=scale)
        summary = summarize_graph(graph)
        rows.append(
            Table3Row(
                dataset=spec.name,
                real_world=spec.real_world,
                paper_label_count=spec.label_count,
                paper_vertex_count=spec.vertex_count,
                paper_edge_count=spec.edge_count,
                generated_label_count=summary.label_count,
                generated_vertex_count=summary.vertex_count,
                generated_edge_count=summary.edge_count,
                scale=scale,
            )
        )
    return rows
