"""Testing utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the resilience test suite and ``benchmarks/chaos_smoke.py``: named
hook points inside the serving stack (registry builds, the scheduler drain
loop, artifact-cache loads) consult a process-global injector that tests arm
with exceptions, delays and trigger counts.  In production nothing is armed
and every hook is a single dict check.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    bitflip_bytes,
    corrupt_file,
    fire,
    injector,
    mutate_payload,
    truncate_bytes,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "bitflip_bytes",
    "corrupt_file",
    "fire",
    "injector",
    "mutate_payload",
    "truncate_bytes",
]
