"""Deterministic fault injection for the serving stack.

The resilience layer (client retries, scheduler supervision, circuit
breakers, self-healing cache) is only trustworthy if its failure paths are
*exercised*, not just written.  This module provides the hooks to do that
deterministically — no monkeypatching, no random kill loops:

* production code calls :func:`fire` at a named **fault point** (e.g.
  ``"registry.build"`` just before a session build, ``"scheduler.worker"``
  inside the drain loop).  With nothing armed this is one dict check — the
  hooks are safe to leave in the hot path permanently;
* tests and the chaos benchmark :meth:`~FaultInjector.arm` a fault at a
  point: an exception to raise, an optional delay to sleep first (slow
  builds), a trigger budget (``times``: fail the first N firings, ``-1`` =
  every firing), and an optional context ``match`` predicate (e.g. only for
  one graph name);
* :func:`corrupt_file` deterministically damages an on-disk artifact
  (truncation or a seeded bit-flip) to drive the cache-quarantine path with
  *real* corruption rather than a simulated error;
* network boundaries additionally support **payload faults**: a spec armed
  with ``mutate=`` (e.g. :func:`truncate_bytes` or :func:`bitflip_bytes`)
  is applied by :func:`mutate_payload` to the bytes flowing through the
  point — a truncated or bit-flipped remote artifact body — so integrity
  verification is exercised with realistic damage, not just raised errors.

Fault points currently wired into the stack:

========================  ====================================================
``registry.build``        fires in :meth:`SessionRegistry._build` before the
                          session build; context: ``graph`` (registered name)
``scheduler.worker``      fires in the scheduler drain loop before a batch
                          executes; an armed error crashes the worker thread
``cache.load_catalog``    fires at the top of :meth:`ArtifactCache.load_catalog`;
                          context: ``key``
``remote.fetch``          fires per GET/HEAD attempt in
                          :class:`~repro.engine.remote.RemoteArtifactStore`
                          (context: ``name``, ``method``); payload faults
                          mutate the downloaded body before verification
``remote.push``           fires per PUT attempt in the remote store
                          (context: ``name``); payload faults mutate the
                          uploaded body
========================  ====================================================
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "injector",
    "fire",
    "mutate_payload",
    "corrupt_file",
    "truncate_bytes",
    "bitflip_bytes",
]

#: Context predicate: receives the hook's keyword context, returns whether
#: the armed fault applies to this firing.
MatchFn = Callable[[dict[str, object]], bool]

#: Payload transform: receives the bytes flowing through a point, returns
#: the (damaged) bytes to substitute.
MutateFn = Callable[[bytes], bytes]


class FaultSpec:
    """One armed fault: what to do when its point fires, and how often."""

    __slots__ = ("point", "error", "delay", "times", "match", "mutate", "trips")

    def __init__(
        self,
        point: str,
        *,
        error: Optional[Union[BaseException, Callable[[], BaseException]]] = None,
        delay: float = 0.0,
        times: int = 1,
        match: Optional[MatchFn] = None,
        mutate: Optional[MutateFn] = None,
    ) -> None:
        if times == 0 or times < -1:
            raise ValueError("times must be a positive count or -1 (unlimited)")
        if delay < 0:
            raise ValueError("delay must be >= 0")
        if mutate is not None and error is not None:
            raise ValueError("a fault is either an error or a payload mutation")
        self.point = point
        self.error = error
        self.delay = delay
        self.times = times
        self.match = match
        self.mutate = mutate
        self.trips = 0

    def exhausted(self) -> bool:
        """Whether the fault has fired its full trigger budget."""
        return self.times != -1 and self.trips >= self.times

    def make_error(self) -> Optional[BaseException]:
        """A fresh exception instance for one firing (``None`` = delay only)."""
        if self.error is None:
            return None
        if callable(self.error) and not isinstance(self.error, BaseException):
            return self.error()
        return self.error

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<FaultSpec {self.point!r} times={self.times} "
            f"trips={self.trips} delay={self.delay}>"
        )


class FaultInjector:
    """Thread-safe registry of armed faults, consulted by the hook points.

    One process-global instance (:data:`injector`) backs the module-level
    :func:`fire`; tests may also build private injectors for unit-testing
    the mechanism itself.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._specs: dict[str, list[FaultSpec]] = {}
        self._fired: dict[str, int] = {}

    def arm(
        self,
        point: str,
        *,
        error: Optional[Union[BaseException, Callable[[], BaseException]]] = None,
        delay: float = 0.0,
        times: int = 1,
        match: Optional[MatchFn] = None,
        mutate: Optional[MutateFn] = None,
    ) -> FaultSpec:
        """Arm a fault at ``point``; returns the spec (its ``trips`` counts).

        ``error`` may be an exception instance (re-raised on every trigger)
        or a zero-argument factory; ``delay`` sleeps before raising (or on
        its own, for slow-path faults); ``times`` bounds how many firings
        trigger (``-1`` = unlimited); ``match`` filters by hook context.
        ``mutate`` (exclusive with ``error``) arms a payload fault instead:
        it is consumed by :meth:`mutate_payload` at points that move bytes,
        never by :meth:`fire`.
        """
        spec = FaultSpec(
            point, error=error, delay=delay, times=times, match=match, mutate=mutate
        )
        with self._lock:
            self._specs.setdefault(point, []).append(spec)
        return spec

    def disarm(self, spec: FaultSpec) -> None:
        """Remove one armed fault (no-op if already removed)."""
        with self._lock:
            specs = self._specs.get(spec.point)
            if specs and spec in specs:
                specs.remove(spec)
                if not specs:
                    del self._specs[spec.point]

    def reset(self) -> None:
        """Disarm everything and clear the firing counters."""
        with self._lock:
            self._specs.clear()
            self._fired.clear()

    @property
    def active(self) -> bool:
        """Whether any fault is currently armed."""
        return bool(self._specs)

    def fired(self, point: str) -> int:
        """How many times ``point`` has fired (armed or not counts only armed)."""
        with self._lock:
            return self._fired.get(point, 0)

    @contextmanager
    def armed(
        self,
        point: str,
        *,
        error: Optional[Union[BaseException, Callable[[], BaseException]]] = None,
        delay: float = 0.0,
        times: int = 1,
        match: Optional[MatchFn] = None,
        mutate: Optional[MutateFn] = None,
    ) -> Iterator[FaultSpec]:
        """Context manager form of :meth:`arm` (disarms on exit)."""
        spec = self.arm(
            point, error=error, delay=delay, times=times, match=match, mutate=mutate
        )
        try:
            yield spec
        finally:
            self.disarm(spec)

    def fire(self, point: str, **context: object) -> None:
        """Hook entry: trigger any armed fault matching ``point``/context.

        Raises the armed exception (after sleeping ``delay``) when a
        matching, non-exhausted spec exists; otherwise returns immediately.
        The no-fault path is a single dict membership check, so production
        code can call this unconditionally.
        """
        if point not in self._specs:  # fast path: nothing armed anywhere near
            return
        with self._lock:
            chosen = self._choose(point, context, payload=False)
            if chosen is None:
                return
            delay = chosen.delay
            error = chosen.make_error()
        # Sleep and raise outside the lock: a slow-build fault must not
        # serialise unrelated hook points behind it.
        if delay > 0:
            time.sleep(delay)
        if error is not None:
            raise error

    def mutate_payload(self, point: str, data: bytes, **context: object) -> bytes:
        """Hook entry for byte streams: apply any armed payload fault.

        Returns ``data`` transformed by the first matching, non-exhausted
        ``mutate=`` spec at ``point`` (after sleeping its ``delay``), or
        unchanged when nothing payload-shaped is armed.  Like :meth:`fire`,
        the no-fault path is a single dict membership check.
        """
        if point not in self._specs:
            return data
        with self._lock:
            chosen = self._choose(point, context, payload=True)
            if chosen is None:
                return data
            delay = chosen.delay
            mutate = chosen.mutate
        if delay > 0:
            time.sleep(delay)
        assert mutate is not None
        return mutate(data)

    def _choose(
        self, point: str, context: dict[str, object], *, payload: bool
    ) -> Optional[FaultSpec]:
        """The first armed spec applicable to this firing; caller holds the lock.

        ``payload`` selects between error/delay specs (:meth:`fire`) and
        ``mutate=`` specs (:meth:`mutate_payload`); a chosen spec's trip and
        the point's fired counter are recorded here.
        """
        chosen: Optional[FaultSpec] = None
        for spec in self._specs.get(point, ()):
            if spec.exhausted():
                continue
            if (spec.mutate is not None) != payload:
                continue
            if spec.match is not None and not spec.match(dict(context)):
                continue
            chosen = spec
            break
        if chosen is not None:
            chosen.trips += 1
            self._fired[point] = self._fired.get(point, 0) + 1
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<FaultInjector points={sorted(self._specs)}>"


#: The process-global injector every production hook point consults.
injector = FaultInjector()

#: Module-level hook entries (bound methods of :data:`injector`).
fire = injector.fire
mutate_payload = injector.mutate_payload


def truncate_bytes(data: bytes, *, keep: float = 0.5) -> bytes:
    """The first ``keep`` fraction of ``data`` (at least one byte).

    Keeping a prefix means zip/npy magic may survive, so the *deep* parsers
    and checksums — not just the magic sniff — get exercised.  Usable
    directly as a ``mutate=`` payload fault.
    """
    if not data:
        raise ValueError("cannot truncate an empty payload")
    return data[: max(1, int(len(data) * keep))]


def bitflip_bytes(data: bytes, *, seed: int = 0) -> bytes:
    """``data`` with one byte XOR-flipped at a seed-derived offset.

    Aims at the middle of the payload: past any leading magic (so the
    format is still recognised) and past container headers whose fields
    readers may ignore (zip readers trust the central directory, not the
    local header) — the flip must land in member *data*, where checksums
    catch it.  Deterministic for a given (payload size, seed).
    """
    if not data:
        raise ValueError("cannot bit-flip an empty payload")
    lower = min(max(16, len(data) // 2), len(data) - 1)
    offset = lower + (seed * 2654435761) % max(1, len(data) - lower)
    offset = min(offset, len(data) - 1)
    mutated = bytearray(data)
    mutated[offset] ^= 0xFF
    return bytes(mutated)


def corrupt_file(
    path: Union[str, Path],
    *,
    mode: str = "truncate",
    seed: int = 0,
) -> Path:
    """Deterministically corrupt an artifact file on disk.

    ``mode="truncate"`` keeps only the first half of the file (see
    :func:`truncate_bytes`); ``mode="bitflip"`` XOR-flips one byte at a
    seed-derived offset past any format magic (see :func:`bitflip_bytes`).
    Returns ``path``.  The damage is deterministic for a given (file size,
    mode, seed), so corruption tests are reproducible.
    """
    target = Path(path)
    data = target.read_bytes()
    if not data:
        raise ValueError(f"cannot corrupt empty file: {target}")
    if mode == "truncate":
        target.write_bytes(truncate_bytes(data))
    elif mode == "bitflip":
        target.write_bytes(bitflip_bytes(data, seed=seed))
    else:
        raise ValueError(f"unknown corruption mode: {mode!r}")
    return target
