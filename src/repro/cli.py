"""Command-line interface.

``python -m repro`` (or the ``repro`` console script) exposes the dataset
generators, catalog builder and every experiment harness so the paper's
tables and figures can be regenerated without writing Python::

    repro datasets                          # Table 3
    repro generate moreno-health --scale 0.05 -o moreno.tsv
    repro catalog moreno.tsv -k 3 -o moreno.catalog.json
    repro experiment table4 --scale 0.02 -k 3
    repro experiment figure2 --scale 0.01 -k 2 3
    repro estimate moreno.catalog.json "1/2/3" --ordering sum-based --buckets 32
    repro engine build moreno.tsv -k 3 --cache-dir .repro-cache --workers 4 --backend process
    repro engine estimate moreno.tsv "1/2/3" "2/2" --cache-dir .repro-cache
    repro engine update moreno.tsv --delta churn.delta --cache-dir .repro-cache
    repro engine cache prune --cache-dir .repro-cache --max-bytes 100000000
    repro serve --graph moreno=moreno.tsv --port 8080 --cache-dir .repro-cache --workers 4
    repro client estimate --graph moreno "1/2/3" "2/2" --url http://127.0.0.1:8080

The engine-facing subcommands (``catalog``, ``engine *``, ``serve``) share
one flag block installed by :func:`add_engine_options`;
:meth:`repro.engine.EngineConfig.from_args` turns the resulting namespace
back into an :class:`~repro.engine.EngineConfig`.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import Optional, Sequence

from repro.datasets.registry import available_datasets, load_dataset
from repro.engine import EngineConfig, EstimationSession
from repro.estimation.estimator import PathSelectivityEstimator
from repro.experiments.ablation_histograms import run_histogram_ablation
from repro.experiments.ablation_vopt import run_vopt_ablation
from repro.experiments.extension_base_l2 import run_extension_base_l2
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.ordering_example import run_ordering_example
from repro.experiments.reporting import format_records
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.exceptions import ReproError
from repro.graph.io import read_edge_list, write_edge_list
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import CATALOG_BACKENDS

__all__ = ["main", "build_parser", "add_engine_options"]


def add_engine_options(
    parser: argparse.ArgumentParser,
    *,
    estimation: bool = True,
    workers_flag: str = "--workers",
) -> None:
    """Install the shared engine flag block on ``parser``.

    One definition of the ``-k/--max-length``, ``--ordering``, ``--buckets``,
    ``--histogram``, ``--backend``, ``--storage``, ``--cache-dir`` and
    build-workers flags shared by ``repro catalog``, every ``repro engine``
    subcommand and ``repro serve``, so defaults and help text cannot drift
    between them.  :meth:`repro.engine.EngineConfig.from_args` consumes the
    resulting namespace.

    ``estimation=False`` (used by ``repro catalog``) skips the
    estimation-only flags (``--ordering``, ``--buckets``, ``--histogram``,
    ``--cache-dir``).  ``workers_flag`` renames the catalog-construction
    worker option — ``repro serve`` passes ``--build-workers`` so plain
    ``--workers`` can mean serving processes — but the parsed attribute is
    always ``build_workers``.
    """
    parser.add_argument("-k", "--max-length", type=int, default=3)
    if estimation:
        parser.add_argument("--ordering", default="sum-based")
        parser.add_argument("--buckets", type=int, default=64)
        parser.add_argument("--histogram", default="v-optimal")
        parser.add_argument(
            "--cache-dir",
            default=None,
            help="artifact cache directory (warm starts skip catalog construction)",
        )
    parser.add_argument(
        "--remote-cache",
        default=None,
        metavar="URL",
        help="shared artifact store ('repro artifact-server') consulted on "
        "local cache miss and pushed to after cold builds",
    )
    parser.add_argument(
        workers_flag,
        dest="build_workers",
        type=int,
        default=None,
        help="workers for catalog construction on a cache miss",
    )
    parser.add_argument(
        "--backend",
        choices=CATALOG_BACKENDS,
        default=None,
        help="catalog construction backend (default: thread when the build "
        "worker count > 1, serial otherwise; matrix = stacked "
        "matrix-chain kernel)",
    )
    parser.add_argument(
        "--storage",
        choices=("auto", "dense", "sparse"),
        default="auto",
        help="catalog representation: sparse stores only nonzero paths "
        "(O(nnz) memory); auto picks by density",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Histogram domain ordering for path selectivity estimation "
        "(EDBT 2018 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the paper's datasets (Table 3 specs)")

    generate = subparsers.add_parser("generate", help="generate a dataset stand-in")
    generate.add_argument("dataset", choices=available_datasets())
    generate.add_argument("--scale", type=float, default=0.05)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("-o", "--output", required=True, help="edge-list output path")

    catalog = subparsers.add_parser("catalog", help="build a selectivity catalog")
    catalog.add_argument("graph", help="edge-list file of the graph")
    catalog.add_argument(
        "-o",
        "--output",
        required=True,
        help="catalog output path (.npz extension writes the compressed "
        "columnar form, anything else JSON)",
    )
    add_engine_options(catalog, estimation=False)

    estimate = subparsers.add_parser("estimate", help="estimate one path's selectivity")
    estimate.add_argument("catalog", help="catalog JSON produced by 'repro catalog'")
    estimate.add_argument("path", help="label path, e.g. 1/2/3")
    estimate.add_argument("--ordering", default="sum-based")
    estimate.add_argument("--buckets", type=int, default=32)
    estimate.add_argument("--histogram", default="v-optimal")

    engine = subparsers.add_parser(
        "engine", help="build / query a cached batched estimation session"
    )
    engine_commands = engine.add_subparsers(dest="engine_command", required=True)

    def _engine_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("graph", help="edge-list file of the graph")
        add_engine_options(sub)
        sub.add_argument("--json", action="store_true", help="emit JSON")

    engine_build = engine_commands.add_parser(
        "build", help="build the session artifacts (catalog, histogram, positions)"
    )
    _engine_common(engine_build)

    engine_update = engine_commands.add_parser(
        "update",
        help="apply an edge delta and rebuild only the affected catalog slices",
    )
    _engine_common(engine_update)
    engine_update.add_argument(
        "--delta",
        required=True,
        help="delta file: one '+|- source label target' line per edge change",
    )
    engine_update.add_argument(
        "-o",
        "--output",
        default=None,
        help="optionally write the post-delta graph back out as an edge list",
    )

    engine_estimate = engine_commands.add_parser(
        "estimate", help="batch-estimate label paths through a session"
    )
    _engine_common(engine_estimate)
    engine_estimate.add_argument(
        "paths", nargs="*", help="label paths, e.g. 1/2/3 (or use --paths-file)"
    )
    engine_estimate.add_argument(
        "--paths-file",
        default=None,
        help="file with one label path per line (blank lines ignored)",
    )
    engine_estimate.add_argument(
        "--truth", action="store_true", help="also print the true selectivities"
    )

    engine_cache = engine_commands.add_parser(
        "cache", help="inspect / prune a shared artifact cache directory"
    )
    engine_cache.add_argument(
        "cache_command", choices=("list", "prune", "clear"), help="maintenance action"
    )
    engine_cache.add_argument("--cache-dir", required=True)
    engine_cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte budget for 'prune' (least-recently-used artifacts go first)",
    )
    engine_cache.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="for 'list': also probe this artifact store and report per-file "
        "presence (local / remote / both)",
    )
    engine_cache.add_argument("--json", action="store_true", help="emit JSON")

    serve = subparsers.add_parser(
        "serve", help="run the concurrent estimation service (JSON over HTTP)"
    )
    serve.add_argument(
        "--graph",
        action="append",
        default=[],
        metavar="NAME=EDGE_LIST",
        help="register a graph under NAME (repeatable); built lazily on first use",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    add_engine_options(serve, workers_flag="--build-workers")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="serving worker processes (default: os.cpu_count(); 1 serves "
        "in-process, >1 pre-forks workers sharing the listening socket)",
    )
    serve.add_argument(
        "--mmap", action="store_true", help="memory-map cached catalogs when possible"
    )
    serve.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="micro-batching coalescing window (milliseconds)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=512, help="path budget per coalesced batch"
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="bounded-queue depth; beyond it requests get HTTP 503",
    )
    serve.add_argument(
        "--max-pending-per-graph",
        type=int,
        default=None,
        help="per-graph admission budget; beyond it requests get HTTP 429",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        default=8 * 2**20,
        help="request-body size cap; larger bodies get HTTP 413",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive build failures that open a graph's circuit "
        "(0 disables the breaker)",
    )
    serve.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        help="seconds an open circuit fast-fails before a half-open probe",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=None, help="LRU session-count budget"
    )
    serve.add_argument(
        "--max-bytes", type=int, default=None, help="LRU session byte budget"
    )
    serve.add_argument(
        "--prune-cache-bytes",
        type=int,
        default=None,
        help="prune the artifact cache to this many bytes after each build",
    )
    serve.add_argument(
        "--warm", action="store_true", help="build every registered graph before serving"
    )
    serve.add_argument("--verbose", action="store_true", help="log HTTP requests")
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines (one object per line) on stderr",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="log level for the 'repro' logger (default: info)",
    )

    artifact_server = subparsers.add_parser(
        "artifact-server",
        help="serve a directory of build artifacts to a fleet "
        "(the --remote-cache tier behind 'repro serve' / 'repro engine')",
    )
    artifact_server.add_argument(
        "--dir", required=True, help="artifact directory to serve (created if absent)"
    )
    artifact_server.add_argument("--host", default="127.0.0.1")
    artifact_server.add_argument("--port", type=int, default=8081)
    artifact_server.add_argument(
        "--max-body-bytes",
        type=int,
        default=256 * 2**20,
        help="PUT body size cap; larger uploads get HTTP 413",
    )
    artifact_server.add_argument(
        "--verbose", action="store_true", help="log HTTP requests"
    )

    client = subparsers.add_parser(
        "client", help="query a running 'repro serve' endpoint"
    )
    client.add_argument(
        "client_command",
        choices=("estimate", "warm", "evict", "update", "stats", "graphs", "healthz"),
    )
    client.add_argument("paths", nargs="*", help="label paths for 'estimate'")
    client.add_argument("--url", default="http://127.0.0.1:8080")
    client.add_argument("--graph", default=None, help="graph name on the server")
    client.add_argument(
        "--delta",
        default=None,
        help="delta file for 'update' ('+|- source label target' lines)",
    )
    client.add_argument(
        "--paths-file",
        default=None,
        help="file with one label path per line (blank lines ignored)",
    )
    client.add_argument("--timeout", type=float, default=30.0)
    client.add_argument(
        "--retries",
        type=int,
        default=3,
        help="retry budget for 429/503/504 and connection errors",
    )
    client.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="total seconds for the call, retries and pauses included",
    )
    client.add_argument("--json", action="store_true", help="emit JSON")
    client.add_argument(
        "--verbose",
        action="store_true",
        help="narrate each attempt (request id, status, latency) on stderr",
    )

    experiment = subparsers.add_parser("experiment", help="run an experiment harness")
    experiment.add_argument(
        "name",
        choices=(
            "ordering-example",
            "table3",
            "table4",
            "figure1",
            "figure2",
            "ablation-histograms",
            "ablation-vopt",
            "extension-l2",
        ),
    )
    experiment.add_argument("--scale", type=float, default=0.02)
    experiment.add_argument("-k", "--max-length", type=int, nargs="+", default=[3])
    experiment.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    return parser


def _print(records, as_json: bool) -> None:
    if as_json:
        print(json.dumps(records, indent=2, default=str))
    else:
        print(format_records(records))


def _run_experiment(args: argparse.Namespace) -> int:
    name = args.name
    k_values = list(args.max_length)
    if name == "ordering-example":
        example = run_ordering_example()
        print("Table 1 — summed ranks")
        _print(example.table1_rows(), args.json)
        print("\nTable 2 — orderings")
        _print(example.table2_rows(), args.json)
        return 0
    if name == "table3":
        rows = run_table3(scale=args.scale)
        _print([row.as_row() for row in rows], args.json)
        return 0
    if name == "table4":
        table4 = run_table4(scale=args.scale, max_length=k_values[0])
        if args.json:
            _print([result.as_row() for result in table4.results], True)
        else:
            print(table4.render())
            print(f"\nsum-based slowdown vs num-alph: {table4.slowdown_of():.2f}x")
        return 0
    if name == "figure1":
        figure1 = run_figure1(scale=args.scale, max_length=k_values[0])
        if args.json:
            print(json.dumps(figure1.as_series(), indent=2))
        else:
            print(
                f"figure 1: {figure1.dataset} k={figure1.max_length} "
                f"domain={figure1.domain_size} max f(l)={figure1.max_frequency:.0f} "
                f"buckets={figure1.bucket_count}"
            )
        return 0
    if name == "figure2":
        figure2 = run_figure2(scale=args.scale, max_lengths=k_values)
        if args.json:
            _print(figure2.records(), True)
        else:
            for dataset in sorted({r.dataset for r in figure2.results}):
                for k in k_values:
                    print(f"\n== {dataset}, k={k} ==")
                    print(figure2.render(dataset, k))
        return 0
    if name == "ablation-histograms":
        ablation = run_histogram_ablation(scale=args.scale, max_length=k_values[0])
        _print(ablation.records, args.json)
        return 0
    if name == "ablation-vopt":
        vopt = run_vopt_ablation()
        _print(vopt.records, args.json)
        return 0
    if name == "extension-l2":
        extension = run_extension_base_l2(scale=args.scale, max_length=k_values[0])
        _print(extension.records, args.json)
        return 0
    raise AssertionError(f"unhandled experiment {name!r}")  # pragma: no cover


def _resolve_cache(args: argparse.Namespace):
    """The artifact cache implied by ``--cache-dir``/``--remote-cache``.

    Returns ``None`` without either flag; a plain local
    :class:`~repro.engine.ArtifactCache` with only ``--cache-dir``; a
    remote-backed one with both.  ``--remote-cache`` alone is an error —
    the remote tier materialises artifacts *into* a local directory.
    """
    from repro.engine.cache import ArtifactCache

    remote_url = getattr(args, "remote_cache", None)
    if args.cache_dir is None:
        if remote_url:
            raise ReproError("--remote-cache requires --cache-dir")
        return None
    remote = None
    if remote_url:
        from repro.engine.remote import RemoteArtifactStore

        remote = RemoteArtifactStore(remote_url)
    return ArtifactCache(args.cache_dir, remote=remote)


def _build_session(args: argparse.Namespace) -> EstimationSession:
    graph = read_edge_list(args.graph)
    config = EngineConfig.from_args(args)
    return EstimationSession.build(
        graph,
        config,
        cache_dir=_resolve_cache(args),
        workers=args.build_workers,
        backend=args.backend,
    )


def _run_engine_cache(args: argparse.Namespace) -> int:
    from repro.engine.cache import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    if args.cache_command == "list":
        rows = []
        for path in cache.artifact_files():
            stat = path.stat()
            rows.append({"file": path.name, "bytes": stat.st_size, "mtime": stat.st_mtime})
        if args.remote:
            # Audit surface: HEAD each local artifact against the store and
            # fold in remote-only names from its index, so one listing
            # answers "is the fleet's shared tier in sync with this cache?".
            from repro.engine.remote import RemoteArtifactStore

            store = RemoteArtifactStore(args.remote)
            for row in rows:
                row["presence"] = (
                    "both" if store.head_artifact(str(row["file"])) else "local"
                )
            local_names = {row["file"] for row in rows}
            for entry in store.list_artifacts():
                if entry.get("name") not in local_names:
                    rows.append(
                        {
                            "file": entry.get("name"),
                            "bytes": entry.get("bytes"),
                            "mtime": entry.get("mtime"),
                            "presence": "remote",
                        }
                    )
            rows.sort(key=lambda row: str(row["file"]))
        if args.json:
            document: dict[str, object] = {
                "files": rows,
                "total_bytes": cache.total_bytes(),
            }
            if args.remote:
                document["remote_url"] = args.remote
            print(json.dumps(document, indent=2))
        else:
            for row in rows:
                line = f"{row['bytes']:>12}  {row['file']}"
                if args.remote:
                    line += f"  [{row['presence']}]"
                print(line)
            print(f"{cache.total_bytes():>12}  total local bytes ({len(rows)} files)")
        return 0
    if args.cache_command == "prune":
        if args.max_bytes is None:
            print("error: prune requires --max-bytes", file=sys.stderr)
            return 2
        before = cache.total_bytes()
        removed = cache.prune(args.max_bytes)
        after = cache.total_bytes()
        if args.json:
            print(
                json.dumps(
                    {
                        "removed": [path.name for path in removed],
                        "bytes_before": before,
                        "bytes_after": after,
                        "max_bytes": args.max_bytes,
                    },
                    indent=2,
                )
            )
        else:
            print(
                f"pruned {len(removed)} artifact(s): {before} -> {after} bytes "
                f"(budget {args.max_bytes})"
            )
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(json.dumps({"removed": removed}) if args.json else f"removed {removed} artifact(s)")
        return 0
    raise AssertionError(
        f"unhandled cache command {args.cache_command!r}"
    )  # pragma: no cover


def _run_serve(args: argparse.Namespace) -> int:
    from repro.engine import EngineConfig
    from repro.obs import configure_logging
    from repro.serving import SessionRegistry, make_server

    configure_logging(json_lines=args.log_json, level=args.log_level)
    if not args.graph:
        print("error: register at least one --graph NAME=EDGE_LIST", file=sys.stderr)
        return 2
    worker_count = args.workers if args.workers is not None else (os.cpu_count() or 1)
    if worker_count < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.remote_cache and args.cache_dir is None:
        print("error: --remote-cache requires --cache-dir", file=sys.stderr)
        return 2
    config = EngineConfig.from_args(args)
    graphs: list[tuple[str, str]] = []
    for spec in args.graph:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            print(f"error: --graph expects NAME=EDGE_LIST, got {spec!r}", file=sys.stderr)
            return 2
        graphs.append((name, path))

    # Pre-fork workers serve cached catalogs through the sparse mmap
    # sidecar whenever a cache exists, so the big arrays are file-backed
    # pages every worker shares instead of N private copies.
    mmap = args.mmap or (worker_count > 1 and args.cache_dir is not None)

    def make_registry() -> SessionRegistry:
        registry = SessionRegistry(
            cache_dir=_resolve_cache(args),
            max_sessions=args.max_sessions,
            max_bytes=args.max_bytes,
            workers=args.build_workers,
            backend=args.backend,
            mmap=mmap,
            prune_cache_bytes=args.prune_cache_bytes,
            default_config=config,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_seconds=args.breaker_reset,
        )
        for name, path in graphs:
            registry.register(name, path=path)
        return registry

    def make_worker_server(registry, inherited_socket=None):
        return make_server(
            registry,
            host=args.host,
            port=args.port,
            window_seconds=args.window_ms / 1000.0,
            max_batch_paths=args.max_batch,
            max_pending=args.max_pending,
            max_pending_per_graph=args.max_pending_per_graph,
            max_body_bytes=args.max_body_bytes,
            verbose=args.verbose,
            inherited_socket=inherited_socket,
        )

    if worker_count > 1:
        from repro.serving.prefork import PreforkServer

        def warm() -> None:
            # The parent builds (or cache-loads) every session once before
            # forking, so each worker's first request finds warm artifacts
            # instead of racing N identical builds.
            registry = make_registry()
            for name in registry.names():
                session = registry.get(name)
                print(f"warmed {name}: domain={session.domain_size}", file=sys.stderr)

        prefork = PreforkServer(
            host=args.host,
            port=args.port,
            worker_count=worker_count,
            registry_factory=make_registry,
            server_factory=make_worker_server,
            warm=warm if args.warm else None,
        )
        names = ", ".join(name for name, _ in graphs)
        print(
            f"serving {names} on http://{args.host}:{prefork.port} "
            f"with {worker_count} worker processes "
            f"(window {args.window_ms}ms, max batch {args.max_batch})",
            flush=True,
        )
        return prefork.run()

    registry = make_registry()
    if args.warm:
        for name in registry.names():
            session = registry.get(name)
            print(f"warmed {name}: domain={session.domain_size}", file=sys.stderr)
    server = make_worker_server(registry)
    host, port = server.server_address[:2]
    print(
        f"serving {', '.join(registry.names())} on http://{host}:{port} "
        f"(window {args.window_ms}ms, max batch {args.max_batch})",
        flush=True,
    )

    # Graceful drain on SIGTERM/SIGINT: stop the accept loop from a side
    # thread (shutdown() called inline here would deadlock — this thread is
    # the one blocked inside serve_forever) and let the finally-close drain
    # the scheduler and in-flight responses before the process exits.
    def _drain(signum: int, frame: object) -> None:
        print(f"signal {signum}: draining before shutdown", file=sys.stderr, flush=True)
        server.begin_drain()  # /readyz flips to 503 before accepts stop
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _drain)
        except ValueError:  # pragma: no cover - non-main thread (embedding)
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        pass
    finally:
        server.close()
    print("drained; bye", file=sys.stderr, flush=True)
    return 0


def _run_catalog(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    remote = None
    remote_name = None
    if args.remote_cache:
        # Standalone catalog builds participate in the shared tier under
        # the same content-addressed key the engine cache would use, so a
        # fleet's 'repro serve --remote-cache' warm-starts from them.
        from repro.engine import config_digest, graph_digest
        from repro.engine.remote import RemoteArtifactStore

        remote = RemoteArtifactStore(args.remote_cache)
        config = EngineConfig.from_args(args)
        key = f"{graph_digest(graph)[:24]}-{config_digest(config.catalog_fields())}"
        remote_name = f"catalog-{key}.npz"
    catalog = None
    if remote is not None:
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory(prefix="repro-catalog-") as scratch:
            target = Path(scratch) / str(remote_name)
            if remote.fetch(str(remote_name), target) == "hit":
                catalog = SelectivityCatalog.load(target)
                print(f"catalog fetched from {remote.base_url} ({remote_name})")
    built = catalog is None
    if catalog is None:
        catalog = SelectivityCatalog.from_graph(
            graph,
            args.max_length,
            workers=args.build_workers,
            backend=args.backend,
            storage=args.storage,
        )
    if str(args.output).endswith(".npz"):
        catalog.save_npz(args.output)
        push_source = str(args.output)
    else:
        catalog.save(args.output)
        push_source = None
    if remote is not None and built:
        import tempfile
        from pathlib import Path

        if push_source is not None:
            pushed = remote.push(push_source, name=str(remote_name))
        else:
            with tempfile.TemporaryDirectory(prefix="repro-catalog-") as scratch:
                staged = Path(scratch) / str(remote_name)
                catalog.save_npz(staged)
                pushed = remote.push(staged, name=str(remote_name))
        state = "pushed to" if pushed else "push failed for"
        print(f"{state} {remote.base_url} ({remote_name})")
    print(
        f"catalog with {len(catalog)} paths (k={args.max_length}, "
        f"|L|={len(catalog.labels)}, storage={catalog.storage}, "
        f"nnz={catalog.nnz}) written to {args.output}"
    )
    return 0


def _run_artifact_server(args: argparse.Namespace) -> int:
    from repro.serving.artifacts import make_artifact_server

    server = make_artifact_server(
        args.dir,
        host=args.host,
        port=args.port,
        max_body_bytes=args.max_body_bytes,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    print(f"serving artifacts from {args.dir} on http://{host}:{port}", flush=True)

    def _stop(signum: int, frame: object) -> None:
        print(f"signal {signum}: shutting down", file=sys.stderr, flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _stop)
        except ValueError:  # pragma: no cover - non-main thread (embedding)
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        pass
    finally:
        server.server_close()
    print("artifact server stopped", file=sys.stderr, flush=True)
    return 0


def _run_client(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceRequestError
    from repro.serving import ServiceClient

    client = ServiceClient(
        args.url,
        timeout=args.timeout,
        max_retries=args.retries,
        deadline_seconds=args.deadline,
        verbose=args.verbose,
    )
    try:
        code = _run_client_command(args, client)
        if args.verbose and client.last_request_id:
            # Success path too: the id correlates this call with the
            # server's traces and logs even when nothing went wrong.
            print(
                f"request_id={client.last_request_id} "
                f"attempts={client.last_attempts}",
                file=sys.stderr,
            )
        return code
    except ServiceRequestError as exc:
        status = exc.status if exc.status is not None else "none"
        print(
            f"error: {exc}\n"
            f"  request_id={exc.request_id} attempts={exc.attempts} "
            f"status={status} code={exc.code or 'none'}",
            file=sys.stderr,
        )
        if args.verbose and client.last_attempt_seconds:
            latencies = " ".join(f"{s:.4f}" for s in client.last_attempt_seconds)
            print(f"  attempt_seconds: {latencies}", file=sys.stderr)
        return 1


def _run_client_command(args: argparse.Namespace, client) -> int:
    command = args.client_command
    if command == "estimate":
        if not args.graph:
            print("error: estimate requires --graph", file=sys.stderr)
            return 2
        paths = list(args.paths)
        if args.paths_file:
            with open(args.paths_file, "r", encoding="utf-8") as handle:
                paths.extend(line.strip() for line in handle if line.strip())
        if not paths:
            print("no paths given (positional arguments or --paths-file)", file=sys.stderr)
            return 2
        estimates = client.estimate(args.graph, paths)
        if args.json:
            print(
                json.dumps(
                    [
                        {"path": path, "estimate": estimate}
                        for path, estimate in zip(paths, estimates)
                    ],
                    indent=2,
                )
            )
        else:
            for path, estimate in zip(paths, estimates):
                print(f"{path}\t{estimate:.2f}")
        return 0
    if command == "warm":
        if not args.graph:
            print("error: warm requires --graph", file=sys.stderr)
            return 2
        stats = client.warm(args.graph)
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(
                f"warmed {args.graph}: domain={stats.get('domain_size')} "
                f"catalog_from_cache={stats.get('catalog_from_cache')}"
            )
        return 0
    if command == "evict":
        if not args.graph:
            print("error: evict requires --graph", file=sys.stderr)
            return 2
        evicted = client.evict(args.graph)
        print(json.dumps({"evicted": evicted}) if args.json else f"evicted: {evicted}")
        return 0
    if command == "update":
        from repro.graph.delta import read_delta

        if not args.graph or not args.delta:
            print("error: update requires --graph and --delta", file=sys.stderr)
            return 2
        delta = read_delta(args.delta)
        document = delta.to_dict()
        row = client.update(args.graph, add=document["add"], remove=document["remove"])
        if args.json:
            print(json.dumps(row, indent=2))
        elif row.get("built"):
            print(
                f"updated {args.graph}: +{row.get('additions')} "
                f"-{row.get('removals')} edges, affected subtrees "
                f"{row.get('affected_subtrees')}/{row.get('subtrees_total')}"
            )
        else:
            print(
                f"updated {args.graph}: +{row.get('additions')} "
                f"-{row.get('removals')} edges applied to the source graph "
                "(session not built yet; the next build sees the delta)"
            )
        return 0
    if command == "stats":
        print(json.dumps(client.stats(), indent=2))
        return 0
    if command == "graphs":
        print(json.dumps(client.graphs(), indent=2))
        return 0
    if command == "healthz":
        print(json.dumps(client.healthz(), indent=2))
        return 0
    raise AssertionError(f"unhandled client command {command!r}")  # pragma: no cover


def _run_engine_update(args: argparse.Namespace) -> int:
    from repro.graph.delta import read_delta
    from repro.graph.io import write_edge_list

    delta = read_delta(args.delta)
    session = _build_session(args)
    updated = session.update(delta)
    stats = updated.stats
    if args.output:
        write_edge_list(updated.graph, args.output)
    if args.json:
        print(json.dumps(stats.as_row(), indent=2))
    else:
        extra = stats.extra
        print(
            f"delta applied: +{extra.get('delta_additions', 0)} "
            f"-{extra.get('delta_removals', 0)} edges, "
            f"{extra.get('delta_affected_subtrees', 0)}/"
            f"{extra.get('delta_subtrees_total', 0)} first-label subtrees "
            f"{'rebuilt (full rebuild)' if extra.get('delta_full_rebuild') else 'recomputed'}"
        )
        print(
            f"catalog patched in {stats.catalog_seconds:.3f}s, "
            f"histogram rebuilt in {stats.histogram_seconds:.3f}s, "
            f"total {stats.total_seconds:.3f}s"
        )
        if args.cache_dir:
            print(f"artifacts keyed {stats.catalog_key} / {stats.histogram_key}")
        if args.output:
            print(f"post-delta graph written to {args.output}")
    return 0


def _run_engine(args: argparse.Namespace) -> int:
    if args.engine_command == "cache":
        return _run_engine_cache(args)
    if args.engine_command == "update":
        return _run_engine_update(args)
    session = _build_session(args)
    stats = session.stats
    if args.engine_command == "build":
        if args.json:
            print(json.dumps(stats.as_row(), indent=2))
        else:
            source = (
                "cache"
                if stats.catalog_from_cache
                else f"built ({stats.backend}, workers={stats.workers})"
            )
            print(
                f"session ready: domain={session.domain_size} "
                f"method={session.histogram.method_name} "
                f"β={session.histogram.bucket_count}"
            )
            print(
                f"catalog {source} in {stats.catalog_seconds:.3f}s, "
                f"histogram {'cache' if stats.histogram_from_cache else 'built'} "
                f"in {stats.histogram_seconds:.3f}s, total {stats.total_seconds:.3f}s"
            )
            if args.cache_dir:
                print(f"artifacts keyed {stats.catalog_key} / {stats.histogram_key}")
        return 0
    if args.engine_command == "estimate":
        paths = list(args.paths)
        if args.paths_file:
            with open(args.paths_file, "r", encoding="utf-8") as handle:
                paths.extend(line.strip() for line in handle if line.strip())
        if not paths:
            print("no paths given (positional arguments or --paths-file)", file=sys.stderr)
            return 2
        estimates = session.estimate_batch(paths)
        if args.json:
            records = [
                {"path": path, "estimate": float(estimate)}
                for path, estimate in zip(paths, estimates)
            ]
            if args.truth:
                for record in records:
                    record["true"] = session.true_selectivity(str(record["path"]))
            print(json.dumps(records, indent=2))
        else:
            for path, estimate in zip(paths, estimates):
                line = f"{path}\t{estimate:.2f}"
                if args.truth:
                    line += f"\t(true {session.true_selectivity(path)})"
                print(line)
        return 0
    raise AssertionError(
        f"unhandled engine command {args.engine_command!r}"
    )  # pragma: no cover


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "datasets":
        # Only the paper columns here: generating full-scale graphs just to
        # list them would be wasteful, so show the static specs instead.
        from repro.datasets.registry import PAPER_DATASETS

        print(format_records([spec.as_table_row() for spec in PAPER_DATASETS.values()]))
        return 0
    if args.command == "generate":
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        write_edge_list(graph, args.output)
        print(
            f"wrote {graph.edge_count} edges / {graph.vertex_count} vertices "
            f"({graph.label_count} labels) to {args.output}"
        )
        return 0
    if args.command == "catalog":
        return _run_catalog(args)
    if args.command == "estimate":
        catalog = SelectivityCatalog.load(args.catalog)
        estimator = PathSelectivityEstimator.build(
            catalog,
            ordering=args.ordering,
            histogram_kind=args.histogram,
            bucket_count=args.buckets,
        )
        estimate = estimator.estimate(args.path)
        truth = catalog.selectivity(args.path)
        print(f"estimate e(ℓ) = {estimate:.2f}   true f(ℓ) = {truth}")
        return 0
    if args.command == "engine":
        return _run_engine(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "artifact-server":
        return _run_artifact_server(args)
    if args.command == "client":
        return _run_client(args)
    if args.command == "experiment":
        return _run_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
