"""Exact evaluation of label-path queries.

Two evaluators are provided:

* :class:`MatrixPathEvaluator` — evaluates a path by boolean sparse matrix
  products over the per-label adjacency matrices.  This is the default and
  is what the catalog builder uses.
* :class:`BFSPathEvaluator` — evaluates a path by forward expansion over the
  adjacency lists (a relational-style pipelined join).  It needs no scipy
  structures and is used for cross-validation in the test-suite and by the
  query-plan executor.

Both return the same result: the set of distinct ``(source, target)`` vertex
pairs connected by the path (the paper's ``ℓ(G)``), and its cardinality
``f(ℓ)`` (the *selectivity*).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.graph.digraph import LabeledDiGraph
from repro.graph.matrices import LabelMatrixStore
from repro.paths.label_path import LabelPath, as_label_path

__all__ = [
    "PathEvaluator",
    "BFSPathEvaluator",
    "MatrixPathEvaluator",
    "evaluate_path",
    "path_selectivity",
]

PathLike = Union[str, LabelPath]


class PathEvaluator:
    """Abstract interface of a label-path evaluator."""

    def pairs(self, path: PathLike) -> set[tuple[object, object]]:
        """The set ``ℓ(G)`` of distinct vertex pairs matched by ``path``."""
        raise NotImplementedError

    def selectivity(self, path: PathLike) -> int:
        """The selectivity ``f(ℓ) = |ℓ(G)|``."""
        return len(self.pairs(path))


class BFSPathEvaluator(PathEvaluator):
    """Pipelined adjacency-list evaluator.

    For each start vertex that has an outgoing edge with the path's first
    label, the evaluator expands the frontier label by label; the final
    frontier contributes one ``(start, end)`` pair per reachable end vertex.
    """

    def __init__(self, graph: LabeledDiGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> LabeledDiGraph:
        """The underlying graph."""
        return self._graph

    def pairs(self, path: PathLike) -> set[tuple[object, object]]:
        """All ``(start, end)`` vertex pairs connected by ``path`` (BFS)."""
        label_path = as_label_path(path)
        graph = self._graph
        first = label_path.first
        if not graph.has_label(first):
            return set()
        result: set[tuple[object, object]] = set()
        forward_first = graph.forward_adjacency(first)
        for start, initial_targets in forward_first.items():
            frontier = set(initial_targets)
            for label in label_path.labels[1:]:
                if not frontier:
                    break
                if not graph.has_label(label):
                    frontier = set()
                    break
                adjacency = graph.forward_adjacency(label)
                next_frontier: set[object] = set()
                for vertex in frontier:
                    next_frontier.update(adjacency.get(vertex, ()))
                frontier = next_frontier
            for end in frontier:
                result.add((start, end))
        return result

    def selectivity(self, path: PathLike) -> int:
        """``f(path)``: the number of distinct connected vertex pairs."""
        # ``pairs`` already deduplicates; just count.
        return len(self.pairs(path))


class MatrixPathEvaluator(PathEvaluator):
    """Sparse boolean matrix-product evaluator.

    Shares a :class:`LabelMatrixStore` so repeated evaluations on the same
    graph reuse cached per-label matrices.
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        *,
        store: Optional[LabelMatrixStore] = None,
    ) -> None:
        self._graph = graph
        self._store = store if store is not None else LabelMatrixStore(graph)

    @property
    def graph(self) -> LabeledDiGraph:
        """The underlying graph."""
        return self._graph

    @property
    def store(self) -> LabelMatrixStore:
        """The shared per-label matrix store."""
        return self._store

    def _known_labels(self, label_path: LabelPath) -> bool:
        return all(label in self._store.labels for label in label_path)

    def pairs(self, path: PathLike) -> set[tuple[object, object]]:
        """Connected vertex pairs of ``path``: nonzeros of the chain product."""
        label_path = as_label_path(path)
        if not self._known_labels(label_path):
            return set()
        matrix = self._store.path_matrix(label_path.labels)
        coo = matrix.tocoo()
        graph = self._graph
        return {
            (graph.vertex_by_id(int(row)), graph.vertex_by_id(int(col)))
            for row, col in zip(coo.row, coo.col)
        }

    def selectivity(self, path: PathLike) -> int:
        """``f(path)`` as the nnz of the boolean matrix-chain product."""
        label_path = as_label_path(path)
        if not self._known_labels(label_path):
            return 0
        return self._store.path_selectivity(label_path.labels)


def evaluate_path(graph: LabeledDiGraph, path: PathLike) -> set[tuple[object, object]]:
    """Convenience one-shot evaluation of ``path`` on ``graph``."""
    return MatrixPathEvaluator(graph).pairs(path)


def path_selectivity(graph: LabeledDiGraph, path: PathLike) -> int:
    """Convenience one-shot selectivity ``f(ℓ)`` of ``path`` on ``graph``."""
    return MatrixPathEvaluator(graph).selectivity(path)
