"""Enumeration of the label-path domain ``Lk``.

``Lk`` is the set of all label paths over the alphabet ``L`` with length up to
``k`` (Section 2 of the paper); its size is ``|L| + |L|² + ... + |L|^k``.
This module enumerates ``Lk`` and — more importantly — computes the true
selectivity ``f(ℓ)`` of *every* path in ``Lk`` in a single prefix-sharing
depth-first traversal over boolean matrix products, which is what makes
building the full catalog for ``k = 6`` feasible.

Three builders exist:

* :func:`compute_selectivity_nonzeros` — the **sparse core**: emits the
  strictly-positive selectivities as aligned ``(domain indices, counts)``
  ``int64`` arrays in canonical numerical-alphabetical order, touching
  O(nnz) memory.  Zero subtrees are never materialised — only a progress
  counter advances past them — which is what lets alphabet/length scenarios
  whose dense domain would not fit in memory (``|L|=20, k=6`` is 64M
  entries) build at all.
* :func:`compute_selectivity_vector` — the **columnar core**: writes counts
  straight into an index-aligned ``int64`` NumPy vector in canonical
  numerical-alphabetical order (see :mod:`repro.paths.index`).  No
  :class:`LabelPath` objects, no dict inserts; subtrees rooted at an empty
  prefix are skipped in O(1) because the vector is zero-initialised and the
  canonical order maps every subtree to a contiguous slice.
* :func:`compute_selectivities` — the legacy dict builder (``LabelPath`` →
  count), kept as the compatibility surface and as the reference baseline the
  benchmark suite measures the columnar core against.

All three share the prefix-sharing DFS over boolean matrix products and
support ``backend="serial" | "thread" | "process"`` over the ``|L|``
independent first-label subtrees of the path trie (the dict builder via
:func:`compute_selectivities_parallel`); the sparse and columnar cores agree
exactly — the sparse arrays are the nonzero scatter of the columnar vector.

The sparse and columnar cores additionally support ``backend="matrix"``, a
level-synchronous matrix-chain kernel (:func:`_matrix_subtrees_nonzeros`)
that replaces the per-trie-node Python recursion with ``k·|L|`` products of
one *stacked* frontier matrix: all live prefix products of a level are
vertically stacked into a single CSR matrix, extended by each label in one
scipy call, and reduced to per-prefix counts with ``indptr`` arithmetic.
Its output is byte-identical to the DFS builders; on the ``|L|=20, k=6``
benchmark domain it builds the sparse catalog several times faster.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterator, Mapping, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import PathError
from repro.graph.delta import GraphDelta, affected_first_labels
from repro.graph.digraph import LabeledDiGraph
from repro.graph.matrices import LabelMatrixStore, block_nonzero_counts, drop_zero_rows
from repro.obs import tracing
from repro.obs.metrics import BUILD_BUCKETS, Histogram
from repro.paths.index import domain_block_starts
from repro.paths.label_path import LabelPath

_CATALOG_BUILD_SECONDS = Histogram(
    "repro_catalog_build_seconds",
    "Wall-clock seconds spent in a catalog core build, by resolved backend.",
    buckets=BUILD_BUCKETS,
    labelnames=("backend",),
)

__all__ = [
    "domain_size",
    "enumerate_label_paths",
    "compute_selectivities",
    "compute_selectivities_parallel",
    "compute_selectivity_vector",
    "compute_selectivity_nonzeros",
    "update_selectivity_vector",
    "update_selectivity_nonzeros",
    "subtree_level_ranges",
    "resolve_backend",
    "CATALOG_BACKENDS",
]

#: Supported catalog-construction backends for :func:`compute_selectivity_vector`.
CATALOG_BACKENDS = ("serial", "thread", "process", "matrix")

#: The progress callback fires every this many processed paths.
_PROGRESS_EVERY = 1000


def domain_size(label_count: int, max_length: int) -> int:
    """The size ``|Lk| = Σ_{i=1..k} |L|^i`` of the label-path domain."""
    if label_count < 1:
        raise PathError("label_count must be >= 1")
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    if label_count == 1:
        return max_length
    return (label_count ** (max_length + 1) - label_count) // (label_count - 1)


def enumerate_label_paths(
    labels: Sequence[str], max_length: int
) -> Iterator[LabelPath]:
    """Yield every label path of length ``1..max_length`` over ``labels``.

    Paths are yielded in *numerical-alphabetical* order: shorter paths first,
    ties broken by the alphabetical order of ``labels`` position by position.
    This is the paper's native domain order, the baseline the orderings are
    compared against, and the order of the columnar catalog's frequency
    vector (path ``i`` of this enumeration sits at vector position ``i``).
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    ordered_labels = sorted(labels)
    if not ordered_labels:
        raise PathError("the label alphabet must not be empty")
    for length in range(1, max_length + 1):
        for combo in itertools.product(ordered_labels, repeat=length):
            yield LabelPath(combo)


# ----------------------------------------------------------------------
# legacy dict builder (compatibility surface and benchmark baseline)
# ----------------------------------------------------------------------
def compute_selectivities(
    graph: LabeledDiGraph,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    prune_empty: bool = False,
    progress: Optional[Callable[[int], None]] = None,
    roots: Optional[Sequence[str]] = None,
) -> dict[LabelPath, int]:
    """Compute ``f(ℓ)`` for every ``ℓ ∈ Lk`` on ``graph`` (dict output).

    The computation shares prefixes: the boolean reachability matrix of a
    prefix is computed once and extended by every label, so the total number
    of sparse matrix products equals the number of internal nodes of the
    label-path trie rather than ``k`` per path.

    This is the legacy path-keyed builder; :func:`compute_selectivity_vector`
    is the columnar equivalent the engine uses.

    Parameters
    ----------
    prune_empty:
        When ``True``, subtrees rooted at a path with zero selectivity are
        skipped (their extensions necessarily also have zero selectivity) and
        those paths are *omitted* from the result.  The histogram experiments
        keep zeros (``False``) because the domain must cover all of ``Lk``.
    progress:
        Optional callback invoked with the running number of paths processed,
        used by the CLI to report progress on large catalogs.
    roots:
        Optional restriction of the *first* label: only the subtrees of the
        label-path trie rooted at these labels are evaluated.  Extensions
        still range over the full alphabet.  This is the unit of work that
        :func:`compute_selectivities_parallel` distributes across workers.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    alphabet = sorted(labels) if labels is not None else graph.labels()
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    if roots is None:
        first_labels = alphabet
    else:
        unknown = sorted(set(roots) - set(alphabet))
        if unknown:
            raise PathError(f"roots outside the label alphabet: {', '.join(unknown)}")
        first_labels = [label for label in alphabet if label in set(roots)]
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)

    selectivities: dict[LabelPath, int] = {}
    processed = 0

    def _tick() -> None:
        nonlocal processed
        processed += 1
        if progress is not None and processed % _PROGRESS_EVERY == 0:
            progress(processed)

    def visit(prefix_labels: tuple[str, ...], prefix_matrix) -> None:
        """DFS one trie level deeper, recording each extension's nnz."""
        extensions = first_labels if not prefix_labels else alphabet
        for label in extensions:
            labels_here = prefix_labels + (label,)
            matrix = (
                matrix_store.matrix(label)
                if prefix_matrix is None
                else matrix_store.extend(prefix_matrix, label)
            )
            count = int(matrix.nnz)
            path = LabelPath(labels_here)
            if count > 0 or not prune_empty:
                selectivities[path] = count
            _tick()
            if len(labels_here) < max_length and (count > 0 or not prune_empty):
                if count == 0:
                    # All extensions of an empty result are empty: record zeros
                    # without multiplying matrices.
                    _record_zero_subtree(labels_here)
                else:
                    visit(labels_here, matrix)

    def _record_zero_subtree(prefix_labels: tuple[str, ...]) -> None:
        remaining = max_length - len(prefix_labels)
        for extra in range(1, remaining + 1):
            for combo in itertools.product(alphabet, repeat=extra):
                selectivities[LabelPath(prefix_labels + combo)] = 0
                # Keep ticking while zeros are recorded: sparse graphs spend
                # most of their domain here, and a silent stretch used to
                # freeze the CLI progress display.
                _tick()

    visit((), None)
    return selectivities


def default_worker_count(label_count: int) -> int:
    """Worker count used when a parallel build is requested without one."""
    return max(1, min(label_count, os.cpu_count() or 1))


def resolve_backend(
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    label_count: int = 1,
) -> tuple[str, int]:
    """Resolve a requested ``(backend, workers)`` pair to what a build uses.

    This is the single place the capping and degradation rules live:
    ``backend=None`` keeps the historical default (threads when
    ``workers > 1``, serial otherwise), worker counts are capped at the
    number of first-label subtrees ``|L|``, and a resolved count of one
    degrades any parallel backend to serial.  Both
    :func:`compute_selectivity_vector` and the engine session resolve
    through here, so reported stats always match the build that ran.

    The ``matrix`` backend is level-synchronous rather than sharded: it
    batches every requested subtree through one stacked frontier, so it
    always resolves to a single worker and never degrades to serial.
    """
    if workers is not None and workers < 1:
        raise PathError("workers must be >= 1")
    if backend is None:
        backend = "thread" if workers is not None and workers > 1 else "serial"
    if backend not in CATALOG_BACKENDS:
        raise PathError(
            f"unknown backend {backend!r}; expected one of {CATALOG_BACKENDS}"
        )
    if backend == "serial" or backend == "matrix":
        return backend, 1
    count = workers if workers is not None else default_worker_count(label_count)
    count = min(count, max(1, label_count))
    if count <= 1:
        return "serial", 1
    return backend, count


class _ProgressAggregator:
    """Folds per-subtree progress counts into one combined running total.

    Each subtree traversal reports its own cumulative count; per-subtree
    adapters convert those into deltas under a lock so the user callback sees
    the combined count across all subtrees (thread-safe, also used by the
    serial path where the lock is uncontended).
    """

    def __init__(self, callback: Optional[Callable[[int], None]]) -> None:
        self._callback = callback
        self._lock = threading.Lock()
        self._total = 0

    def adapter(self) -> Optional[Callable[[int], None]]:
        """A per-worker progress callback feeding the shared total."""
        if self._callback is None:
            return None
        last = [0]

        def report(processed: int) -> None:
            """Fold this worker's cumulative count into the shared total."""
            with self._lock:
                self._total += processed - last[0]
                last[0] = processed
                combined = self._total
            self._callback(combined)

        return report

    def bump(self, count: int) -> None:
        """Add ``count`` finished paths and fire the callback directly."""
        if self._callback is None:
            return
        with self._lock:
            self._total += count
            combined = self._total
        self._callback(combined)


def compute_selectivities_parallel(
    graph: LabeledDiGraph,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    prune_empty: bool = False,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> dict[LabelPath, int]:
    """Parallel :func:`compute_selectivities` over first-label subtrees.

    The label-path trie decomposes into ``|L|`` independent subtrees, one per
    first label; each worker runs the prefix-sharing DFS on one subtree,
    sharing the read-only per-label matrices.  Threads (not processes) are
    used because the heavy lifting is scipy's sparse matmul, which releases
    the GIL, and the graph/matrix store need not be pickled.  (For a
    process-sharded build of the columnar representation see
    :func:`compute_selectivity_vector` with ``backend="process"``.)

    ``workers=None`` picks ``min(|L|, cpu_count)``; ``workers=1`` degrades to
    the serial implementation.  Results are identical to the serial builder.
    ``progress`` receives the *combined* running path count across workers
    (called from worker threads; the callback must be thread-safe).
    """
    if workers is not None and workers < 1:
        raise PathError("workers must be >= 1")
    alphabet = sorted(labels) if labels is not None else graph.labels()
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    worker_count = workers if workers is not None else default_worker_count(len(alphabet))
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)
    if worker_count <= 1 or len(alphabet) == 1:
        return compute_selectivities(
            graph,
            max_length,
            labels=alphabet,
            store=matrix_store,
            prune_empty=prune_empty,
            progress=progress,
        )

    aggregator = _ProgressAggregator(progress)
    # Materialise every per-label matrix up front so workers only ever read
    # the store's cache (lazy fill from multiple threads would duplicate work).
    for label in alphabet:
        matrix_store.matrix(label)
    selectivities: dict[LabelPath, int] = {}
    with ThreadPoolExecutor(max_workers=worker_count) as pool:
        futures = [
            pool.submit(
                compute_selectivities,
                graph,
                max_length,
                labels=alphabet,
                store=matrix_store,
                prune_empty=prune_empty,
                roots=(label,),
                progress=aggregator.adapter(),
            )
            for label in alphabet
        ]
        for future in futures:
            selectivities.update(future.result())
    return selectivities


# ----------------------------------------------------------------------
# columnar builder (the engine's construction core)
# ----------------------------------------------------------------------
def _subtree_tail_size(base: int, remaining: int) -> int:
    """Number of extension paths below a prefix: ``Σ_{e=1..remaining} |L|^e``."""
    if remaining <= 0:
        return 0
    if base == 1:
        return remaining
    return (base ** (remaining + 1) - base) // (base - 1)


def _subtree_levels(
    matrices: Mapping[str, sparse.csr_matrix],
    alphabet: Sequence[str],
    first_label: str,
    max_length: int,
    progress: Optional[Callable[[int], None]] = None,
) -> list[np.ndarray]:
    """Selectivities of one first-label subtree as per-length local arrays.

    ``levels[i]`` covers the paths of length ``i + 1`` that start with
    ``first_label``; within a level, a path's local position is the
    base-``|L|`` number spelled by the digits of its *remaining* labels, so
    ``levels[i]`` has exactly ``|L|^i`` slots and maps onto a contiguous
    slice of the full domain vector.  Subtrees of an empty prefix are
    accounted in O(1): the arrays are zero-initialised, so only the progress
    counter advances.
    """
    base = len(alphabet)
    levels = [np.zeros(base**i, dtype=np.int64) for i in range(max_length)]
    state = [0, 0]  # processed, last reported

    def advance(count: int) -> None:
        """Bump the processed counter, reporting progress in batches."""
        state[0] += count
        if progress is not None and state[0] - state[1] >= _PROGRESS_EVERY:
            state[1] = state[0]
            progress(state[0])

    root_matrix = matrices[first_label]
    levels[0][0] = int(root_matrix.nnz)
    advance(1)

    def visit(local_value: int, length: int, prefix_matrix) -> None:
        """DFS below one prefix, writing counts into the level arrays."""
        if length >= max_length:
            return
        if prefix_matrix.nnz == 0:
            # Zero subtree: every slot below this prefix keeps its initial 0.
            advance(_subtree_tail_size(base, max_length - length))
            return
        level = levels[length]
        for digit, label in enumerate(alphabet):
            extended = (prefix_matrix @ matrices[label]).astype(bool)
            child = local_value * base + digit
            level[child] = int(extended.nnz)
            advance(1)
            visit(child, length + 1, extended)

    visit(0, 1, root_matrix)
    if progress is not None and state[0] != state[1]:
        progress(state[0])
    return levels


def _subtree_nonzeros(
    matrices: Mapping[str, sparse.csr_matrix],
    alphabet: Sequence[str],
    first_label: str,
    max_length: int,
    progress: Optional[Callable[[int], None]] = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Nonzero selectivities of one first-label subtree, as per-length arrays.

    The sparse counterpart of :func:`_subtree_levels`: entry ``i`` of the
    returned list is an ``(int64 local positions, int64 counts)`` pair
    covering the *nonzero* paths of length ``i + 1`` that start with
    ``first_label``; a path's local position is the base-``|L|`` number
    spelled by its remaining labels, so the pair maps onto the same
    contiguous domain slice :func:`_merge_subtree` fills — without ever
    allocating the ``|L|^i`` slots the zeros would occupy.  The DFS visits
    extensions in digit order, so each level's positions come out sorted and
    no post-hoc sort is needed.  Zero subtrees advance only the progress
    counter.
    """
    base = len(alphabet)
    local_lists: list[list[int]] = [[] for _ in range(max_length)]
    count_lists: list[list[int]] = [[] for _ in range(max_length)]
    state = [0, 0]  # processed, last reported

    def advance(count: int) -> None:
        """Bump the processed counter, reporting progress in batches."""
        state[0] += count
        if progress is not None and state[0] - state[1] >= _PROGRESS_EVERY:
            state[1] = state[0]
            progress(state[0])

    root_matrix = matrices[first_label]
    root_count = int(root_matrix.nnz)
    if root_count:
        local_lists[0].append(0)
        count_lists[0].append(root_count)
    advance(1)

    def visit(local_value: int, length: int, prefix_matrix) -> None:
        """DFS below one prefix, appending nonzero (local, count) pairs."""
        if length >= max_length:
            return
        if prefix_matrix.nnz == 0:
            advance(_subtree_tail_size(base, max_length - length))
            return
        locals_here = local_lists[length]
        counts_here = count_lists[length]
        for digit, label in enumerate(alphabet):
            extended = (prefix_matrix @ matrices[label]).astype(bool)
            child = local_value * base + digit
            count = int(extended.nnz)
            if count:
                locals_here.append(child)
                counts_here.append(count)
            advance(1)
            visit(child, length + 1, extended)

    visit(0, 1, root_matrix)
    if progress is not None and state[0] != state[1]:
        progress(state[0])
    return [
        (
            np.asarray(locals_, dtype=np.int64),
            np.asarray(counts_, dtype=np.int64),
        )
        for locals_, counts_ in zip(local_lists, count_lists)
    ]


def _matrix_subtrees_nonzeros(
    matrices: Mapping[str, sparse.csr_matrix],
    alphabet: Sequence[str],
    roots: Sequence[str],
    max_length: int,
    progress: Optional[Callable[[int], None]] = None,
) -> dict[str, list[tuple[np.ndarray, np.ndarray]]]:
    """Nonzero selectivities of the ``roots`` subtrees via stacked matrix chains.

    The level-synchronous counterpart of :func:`_subtree_nonzeros` with
    identical per-root output.  Instead of recursing per trie node, every
    live prefix product of level ``m`` — across *all* requested subtrees —
    is kept as a block of one vertically stacked boolean CSR ``frontier``;
    extending the whole level by a label is then a single
    ``frontier @ M(label)`` product, and the per-prefix path counts fall out
    of ``indptr`` differences at the block boundaries
    (:func:`~repro.graph.matrices.block_nonzero_counts`).  That turns
    ``O(trie nodes)`` scipy calls into ``k · |L|`` and moves the inner build
    loop entirely into compiled code.

    Memory stays proportional to the live frontier: blocks whose product is
    empty are dropped (zero-subtree pruning, exactly mirroring the DFS), and
    all-zero *rows* are compressed away between levels
    (:func:`~repro.graph.matrices.drop_zero_rows`) — loss-free because the
    emitted counts are row-position independent.  Blocks are kept sorted by
    ``(first digit, local value)``, so each level's emitted positions come
    out sorted per root after one :func:`numpy.lexsort` over the level.

    ``progress`` receives the cumulative processed-path count once per
    completed level (the level's full ``|roots| · |L|^m`` slot count,
    pruned or not), so totals match the DFS builders exactly even though
    the cadence is coarser.
    """
    base = len(alphabet)
    digit_of = {label: digit for digit, label in enumerate(alphabet)}
    ordered_roots = sorted(roots, key=lambda label: digit_of[label])
    empty = np.empty(0, dtype=np.int64)
    results: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {
        root: [] for root in ordered_roots
    }
    processed = 0

    def advance(count: int) -> None:
        """Report progress after each completed frontier level."""
        nonlocal processed
        processed += count
        if progress is not None:
            progress(processed)

    # Level 0: the root matrices themselves seed the frontier, one block per
    # root whose adjacency matrix has any edge at all.
    parts: list[sparse.csr_matrix] = []
    part_roots: list[int] = []
    part_values: list[int] = []
    part_heights: list[int] = []
    for root in ordered_roots:
        matrix = matrices[root]
        count = int(matrix.nnz)
        if count:
            results[root].append(
                (np.zeros(1, dtype=np.int64), np.array([count], dtype=np.int64))
            )
            kept = drop_zero_rows(matrix)
            parts.append(kept)
            part_roots.append(digit_of[root])
            part_values.append(0)
            part_heights.append(kept.shape[0])
        else:
            results[root].append((empty, empty.copy()))
    advance(len(ordered_roots))

    frontier: Optional[sparse.csr_matrix] = None
    if parts:
        frontier = sparse.vstack(parts, format="csr")
        block_root = np.asarray(part_roots, dtype=np.int64)
        block_value = np.asarray(part_values, dtype=np.int64)
        block_ptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(part_heights, dtype=np.int64))
        )

    for length in range(1, max_length):
        level_paths = len(ordered_roots) * base**length
        if frontier is None:
            for root in ordered_roots:
                results[root].append((empty, empty.copy()))
            advance(level_paths)
            continue
        last = length + 1 == max_length
        child_roots: list[np.ndarray] = []
        child_values: list[np.ndarray] = []
        child_counts: list[np.ndarray] = []
        parts = []
        next_roots: list[np.ndarray] = []
        next_values: list[np.ndarray] = []
        next_heights: list[np.ndarray] = []
        for digit, label in enumerate(alphabet):
            product = frontier @ matrices[label]
            counts = block_nonzero_counts(product, block_ptr)
            alive = np.nonzero(counts)[0]
            if alive.size == 0:
                continue
            children = block_value * base + digit
            child_roots.append(block_root[alive])
            child_values.append(children[alive])
            child_counts.append(counts[alive])
            if last:
                continue
            rows = np.nonzero(np.diff(product.indptr))[0]
            parts.append(product[rows])
            next_roots.append(block_root[alive])
            next_values.append(children[alive])
            next_heights.append(np.diff(np.searchsorted(rows, block_ptr))[alive])
        if child_values:
            roots_cat = np.concatenate(child_roots)
            values_cat = np.concatenate(child_values)
            counts_cat = np.concatenate(child_counts)
            order = np.lexsort((values_cat, roots_cat))
            roots_cat = roots_cat[order]
            values_cat = values_cat[order]
            counts_cat = counts_cat[order]
            for root in ordered_roots:
                digit = digit_of[root]
                low, high = np.searchsorted(roots_cat, [digit, digit + 1])
                if high > low:
                    results[root].append(
                        (values_cat[low:high].copy(), counts_cat[low:high].copy())
                    )
                else:
                    results[root].append((empty, empty.copy()))
        else:
            for root in ordered_roots:
                results[root].append((empty, empty.copy()))
        advance(level_paths)
        if last or not parts:
            frontier = None
            continue
        frontier = sparse.vstack(parts, format="csr")
        block_root = np.concatenate(next_roots)
        block_value = np.concatenate(next_values)
        block_ptr = np.concatenate(
            (
                np.zeros(1, dtype=np.int64),
                np.cumsum(np.concatenate(next_heights), dtype=np.int64),
            )
        )
    return results


# Per-process state for the ``process`` backend, populated by the pool
# initializer so the CSR matrices are shipped to each worker exactly once.
_PROCESS_STATE: dict[str, object] = {}


def _init_process_worker(
    matrices: Mapping[str, sparse.csr_matrix],
    alphabet: Sequence[str],
    max_length: int,
) -> None:
    _PROCESS_STATE["matrices"] = matrices
    _PROCESS_STATE["alphabet"] = tuple(alphabet)
    _PROCESS_STATE["max_length"] = max_length


def _process_subtree(first_label: str) -> tuple[str, list[np.ndarray]]:
    levels = _subtree_levels(
        _PROCESS_STATE["matrices"],  # type: ignore[arg-type]
        _PROCESS_STATE["alphabet"],  # type: ignore[arg-type]
        first_label,
        _PROCESS_STATE["max_length"],  # type: ignore[arg-type]
    )
    return first_label, levels


def _process_subtree_nonzeros(
    first_label: str,
) -> tuple[str, list[tuple[np.ndarray, np.ndarray]]]:
    levels = _subtree_nonzeros(
        _PROCESS_STATE["matrices"],  # type: ignore[arg-type]
        _PROCESS_STATE["alphabet"],  # type: ignore[arg-type]
        first_label,
        _PROCESS_STATE["max_length"],  # type: ignore[arg-type]
    )
    return first_label, levels


def _merge_subtree(
    vector: np.ndarray,
    starts: np.ndarray,
    base: int,
    first_digit: int,
    levels: Sequence[np.ndarray],
) -> None:
    """Slice-assign one first-label subtree into the full domain vector."""
    for level_index, level in enumerate(levels):
        width = base**level_index
        offset = int(starts[level_index]) + first_digit * width
        vector[offset:offset + width] = level


def _merge_subtree_nonzeros(
    vector: np.ndarray,
    starts: np.ndarray,
    base: int,
    first_digit: int,
    levels: Sequence[tuple[np.ndarray, np.ndarray]],
) -> None:
    """Scatter one subtree's nonzero levels into the full domain vector.

    The sparse counterpart of :func:`_merge_subtree`: each level's slice is
    zeroed first (the vector may hold stale pre-delta values on the update
    path) and the nonzero counts are scattered at their local positions.
    """
    for level_index, (locals_, counts) in enumerate(levels):
        width = base**level_index
        offset = int(starts[level_index]) + first_digit * width
        vector[offset:offset + width] = 0
        if locals_.size:
            vector[offset + locals_] = counts


def compute_selectivity_vector(
    graph: LabeledDiGraph,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    progress: Optional[Callable[[int], None]] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Compute ``f(ℓ)`` for every ``ℓ ∈ Lk`` as an index-aligned vector.

    The returned ``int64`` array has ``|Lk|`` entries; position ``i`` holds
    the selectivity of the ``i``-th path of the canonical
    numerical-alphabetical enumeration (see
    :func:`repro.paths.index.path_to_domain_index`).  This is the columnar
    representation :class:`~repro.paths.catalog.SelectivityCatalog` stores
    and the V-optimal DP consumes directly.

    Compared with :func:`compute_selectivities` the columnar builder performs
    zero ``LabelPath`` allocations and zero dict inserts, and subtrees of an
    empty prefix cost O(1) instead of one tuple per descendant path — on
    sparse graphs at large ``k`` that is almost the whole domain.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"matrix"`` (``None``
        resolves via :func:`resolve_backend`: threads when ``workers > 1``,
        serial otherwise).  Both parallel backends shard the ``|L|``
        first-label subtrees of the path trie; threads share the CSR
        matrices in memory (scipy's matmul releases the GIL), processes
        receive them once via the pool initializer and return per-subtree
        arrays that are merged by slice assignment.  ``"matrix"`` runs the
        level-synchronous stacked matrix-chain kernel
        (:func:`_matrix_subtrees_nonzeros`) in a single worker; its output
        is byte-identical to the DFS backends.
    workers:
        Worker count for the parallel backends (default
        ``min(|L|, cpu_count)``, capped at ``|L|``).  A resolved count of
        one degrades to serial.
    progress:
        Combined running path count across subtrees.  With the ``process``
        backend the callback fires once per completed subtree (counts cannot
        stream across process boundaries cheaply); with ``serial`` and
        ``thread`` it fires about every 1000 paths.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    alphabet = tuple(sorted(labels) if labels is not None else graph.labels())
    backend, worker_count = resolve_backend(backend, workers, len(alphabet) or 1)
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)
    matrices = matrix_store.as_dict(alphabet)
    starts = domain_block_starts(len(alphabet), max_length)
    vector = np.zeros(int(starts[-1]), dtype=np.int64)
    started = time.perf_counter()
    _build_subtrees_into(
        vector,
        matrices,
        alphabet,
        alphabet,
        max_length,
        starts,
        backend,
        worker_count,
        progress,
    )
    elapsed = time.perf_counter() - started
    _CATALOG_BUILD_SECONDS.observe(elapsed, backend=backend)
    trace = tracing.current_trace()
    if trace is not None:
        trace.add_span("catalog.vector", elapsed, backend=backend, labels=len(alphabet))
    return vector


def _build_subtrees_into(
    vector: np.ndarray,
    matrices: Mapping[str, sparse.csr_matrix],
    alphabet: Sequence[str],
    roots: Sequence[str],
    max_length: int,
    starts: np.ndarray,
    backend: str,
    worker_count: int,
    progress: Optional[Callable[[int], None]],
) -> None:
    """Evaluate the subtrees rooted at ``roots`` and slice-assign into ``vector``.

    Shared core of :func:`compute_selectivity_vector` (``roots = alphabet``)
    and :func:`update_selectivity_vector` (``roots`` = the affected first
    labels); extensions always range over the full ``alphabet``.
    """
    base = len(alphabet)
    digit_of = {label: digit for digit, label in enumerate(alphabet)}

    if backend == "matrix":
        aggregator = _ProgressAggregator(progress)
        results = _matrix_subtrees_nonzeros(
            matrices, alphabet, roots, max_length, progress=aggregator.adapter()
        )
        for label in roots:
            _merge_subtree_nonzeros(
                vector, starts, base, digit_of[label], results[label]
            )
        return

    if backend == "serial":
        aggregator = _ProgressAggregator(progress)
        for label in roots:
            levels = _subtree_levels(
                matrices, alphabet, label, max_length, progress=aggregator.adapter()
            )
            _merge_subtree(vector, starts, base, digit_of[label], levels)
        return

    if backend == "thread":
        aggregator = _ProgressAggregator(progress)
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            futures = [
                pool.submit(
                    _subtree_levels,
                    matrices,
                    alphabet,
                    label,
                    max_length,
                    progress=aggregator.adapter(),
                )
                for label in roots
            ]
            for label, future in zip(roots, futures):
                _merge_subtree(vector, starts, base, digit_of[label], future.result())
        return

    # process backend
    aggregator = _ProgressAggregator(progress)
    subtree_size = 1 + _subtree_tail_size(base, max_length - 1)
    with ProcessPoolExecutor(
        max_workers=worker_count,
        initializer=_init_process_worker,
        initargs=(matrices, tuple(alphabet), max_length),
    ) as pool:
        for label, levels in pool.map(_process_subtree, roots):
            _merge_subtree(vector, starts, base, digit_of[label], levels)
            aggregator.bump(subtree_size)


def _collect_subtrees_nonzeros(
    matrices: Mapping[str, sparse.csr_matrix],
    alphabet: Sequence[str],
    roots: Sequence[str],
    max_length: int,
    backend: str,
    worker_count: int,
    progress: Optional[Callable[[int], None]],
) -> dict[str, list[tuple[np.ndarray, np.ndarray]]]:
    """Per-root :func:`_subtree_nonzeros` results, through the chosen backend.

    The sparse sibling of :func:`_build_subtrees_into`; results are keyed by
    first label so callers can assemble (or splice) them in digit order.
    """
    base = len(alphabet)
    results: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}

    if backend == "matrix":
        aggregator = _ProgressAggregator(progress)
        return _matrix_subtrees_nonzeros(
            matrices, alphabet, roots, max_length, progress=aggregator.adapter()
        )

    if backend == "serial":
        aggregator = _ProgressAggregator(progress)
        for label in roots:
            results[label] = _subtree_nonzeros(
                matrices, alphabet, label, max_length, progress=aggregator.adapter()
            )
        return results

    if backend == "thread":
        aggregator = _ProgressAggregator(progress)
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            futures = [
                pool.submit(
                    _subtree_nonzeros,
                    matrices,
                    alphabet,
                    label,
                    max_length,
                    progress=aggregator.adapter(),
                )
                for label in roots
            ]
            for label, future in zip(roots, futures):
                results[label] = future.result()
        return results

    # process backend
    aggregator = _ProgressAggregator(progress)
    subtree_size = 1 + _subtree_tail_size(base, max_length - 1)
    with ProcessPoolExecutor(
        max_workers=worker_count,
        initializer=_init_process_worker,
        initargs=(matrices, tuple(alphabet), max_length),
    ) as pool:
        for label, levels in pool.map(_process_subtree_nonzeros, roots):
            results[label] = levels
            aggregator.bump(subtree_size)
    return results


def _assemble_nonzeros(
    results: Mapping[str, list[tuple[np.ndarray, np.ndarray]]],
    alphabet: Sequence[str],
    roots: Sequence[str],
    starts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-subtree nonzero levels into sorted global arrays.

    The canonical order is length-major and, within a length, first-digit
    major; concatenating levels in length order and subtrees in digit order
    therefore yields globally sorted domain indices without a sort.
    """
    base = len(alphabet)
    digit_of = {label: digit for digit, label in enumerate(alphabet)}
    ordered_roots = sorted(roots, key=lambda label: digit_of[label])
    max_length = len(starts) - 1
    index_chunks: list[np.ndarray] = []
    count_chunks: list[np.ndarray] = []
    for level_index in range(max_length):
        width = base**level_index
        for label in ordered_roots:
            locals_, counts = results[label][level_index]
            if locals_.size:
                offset = int(starts[level_index]) + digit_of[label] * width
                index_chunks.append(offset + locals_)
                count_chunks.append(counts)
    if not index_chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(index_chunks), np.concatenate(count_chunks)


def compute_selectivity_nonzeros(
    graph: LabeledDiGraph,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    progress: Optional[Callable[[int], None]] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the nonzero part of ``f`` over ``Lk`` as aligned sparse arrays.

    Returns ``(indices, counts)``: sorted ``int64`` canonical domain indices
    of every path with ``f(ℓ) > 0`` and their selectivities, i.e. exactly
    ``np.nonzero(v)[0]`` and ``v[np.nonzero(v)[0]]`` of the
    :func:`compute_selectivity_vector` output — computed in O(nnz) memory.
    The full ``|Lk|`` domain is never allocated: zero subtrees advance only
    the progress counter, so scenarios whose dense vector would not fit
    (``|L|=20, k=6`` is 64M entries) build in the space of their signal.

    Parameters are as in :func:`compute_selectivity_vector`; the traversal,
    backends and progress semantics are shared.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    alphabet = tuple(sorted(labels) if labels is not None else graph.labels())
    backend, worker_count = resolve_backend(backend, workers, len(alphabet) or 1)
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)
    matrices = matrix_store.as_dict(alphabet)
    starts = domain_block_starts(len(alphabet), max_length)
    started = time.perf_counter()
    results = _collect_subtrees_nonzeros(
        matrices, alphabet, alphabet, max_length, backend, worker_count, progress
    )
    assembled = _assemble_nonzeros(results, alphabet, alphabet, starts)
    elapsed = time.perf_counter() - started
    _CATALOG_BUILD_SECONDS.observe(elapsed, backend=backend)
    trace = tracing.current_trace()
    if trace is not None:
        trace.add_span("catalog.nonzeros", elapsed, backend=backend, labels=len(alphabet))
    return assembled


def subtree_level_ranges(
    label_count: int, max_length: int, first_digit: int
) -> list[tuple[int, int]]:
    """The half-open canonical index ranges one first-label subtree covers.

    One ``(low, high)`` range per path length: the length-``m + 1`` slice of
    the subtree rooted at the label with digit ``first_digit`` is
    ``[starts[m] + d·|L|^m, starts[m] + (d + 1)·|L|^m)``.  These are the
    exact ranges the sparse delta patch replaces.
    """
    starts = domain_block_starts(label_count, max_length)
    ranges: list[tuple[int, int]] = []
    for level_index in range(max_length):
        width = label_count**level_index
        low = int(starts[level_index]) + first_digit * width
        ranges.append((low, low + width))
    return ranges


def update_selectivity_nonzeros(
    graph: LabeledDiGraph,
    max_length: int,
    old_indices: np.ndarray,
    old_counts: np.ndarray,
    delta: GraphDelta,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    progress: Optional[Callable[[int], None]] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    affected: Optional[Sequence[str]] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Patch sparse ``(indices, counts)`` arrays after ``delta``.

    The sparse counterpart of :func:`update_selectivity_vector`: only the
    first-label subtrees :func:`~repro.graph.delta.affected_first_labels`
    flags are re-evaluated (sparsely, on the post-delta ``graph``); every
    old entry outside the affected subtrees' index ranges is kept as is.
    The result equals a cold :func:`compute_selectivity_nonzeros` on the
    post-delta graph.  Caller contract (post-delta graph, stable alphabet,
    optional precomputed ``affected``) is as in
    :func:`update_selectivity_vector`.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    alphabet = tuple(sorted(labels) if labels is not None else graph.labels())
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    old_indices = np.ascontiguousarray(old_indices, dtype=np.int64)
    old_counts = np.ascontiguousarray(old_counts, dtype=np.int64)
    if old_indices.shape != old_counts.shape or old_indices.ndim != 1:
        raise PathError(
            "old indices and counts must be aligned one-dimensional arrays"
        )
    if affected is None:
        affected = affected_first_labels(graph, delta, max_length, labels=alphabet)
    if not affected:
        return old_indices.copy(), old_counts.copy()
    backend, worker_count = resolve_backend(backend, workers, len(affected))
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)
    matrices = matrix_store.as_dict(alphabet)
    starts = domain_block_starts(len(alphabet), max_length)
    digit_of = {label: digit for digit, label in enumerate(alphabet)}
    unknown = sorted(set(affected) - set(alphabet))
    if unknown:
        raise PathError(
            f"affected labels outside the alphabet: {', '.join(unknown)}"
        )

    results = _collect_subtrees_nonzeros(
        matrices, alphabet, tuple(affected), max_length, backend, worker_count, progress
    )
    fresh_indices, fresh_counts = _assemble_nonzeros(
        results, alphabet, tuple(affected), starts
    )

    # Drop every retained entry that falls inside an affected subtree's
    # ranges, then merge the (disjoint) fresh entries back in sorted order.
    keep = np.ones(old_indices.size, dtype=bool)
    for label in affected:
        for low, high in subtree_level_ranges(
            len(alphabet), max_length, digit_of[label]
        ):
            first, last = np.searchsorted(old_indices, [low, high])
            keep[first:last] = False
    kept_indices = old_indices[keep]
    kept_counts = old_counts[keep]
    merged_indices = np.concatenate((kept_indices, fresh_indices))
    merged_counts = np.concatenate((kept_counts, fresh_counts))
    order = np.argsort(merged_indices, kind="stable")
    return merged_indices[order], merged_counts[order]


def update_selectivity_vector(
    graph: LabeledDiGraph,
    max_length: int,
    old_vector: np.ndarray,
    delta: GraphDelta,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    progress: Optional[Callable[[int], None]] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    affected: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Patch a frequency vector after ``delta`` without a full cold rebuild.

    ``graph`` must be the **post-delta** graph and ``old_vector`` the output
    of :func:`compute_selectivity_vector` for the pre-delta graph over the
    same ``labels`` alphabet and ``max_length``.  Only the first-label
    subtree slices that :func:`~repro.graph.delta.affected_first_labels`
    flags are re-evaluated (exactly, on the new graph, through the same
    serial/thread/process/matrix backends as a cold build — the matrix
    kernel simply stacks only the affected subtrees); every other slice is
    copied from ``old_vector``.  The result is byte-identical to a cold
    :func:`compute_selectivity_vector` on the post-delta graph.

    The caller is responsible for keeping the domain stable: when the delta
    changes the label *alphabet* (a new label appears, or ``labels`` no
    longer matches the graph), the canonical index space itself moves and
    the right answer is a cold rebuild —
    :meth:`~repro.paths.catalog.SelectivityCatalog.apply_delta` handles that
    fallback.  A delta label outside ``labels`` raises
    :class:`~repro.exceptions.GraphError`.

    Parameters are as in :func:`compute_selectivity_vector`; ``workers`` is
    additionally capped at the number of *affected* subtrees.  ``progress``
    reports processed paths of the recomputed subtrees only.  ``affected``,
    when given, is a precomputed :func:`affected_first_labels` result for
    this exact (graph, delta, alphabet) — callers that already ran the
    analysis (the engine does, for its stats) pass it through so it is not
    recomputed; soundness is theirs to guarantee.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    alphabet = tuple(sorted(labels) if labels is not None else graph.labels())
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    expected = domain_size(len(alphabet), max_length)
    old_vector = np.asarray(old_vector)
    if old_vector.shape != (expected,):
        raise PathError(
            f"old vector has shape {old_vector.shape}, expected ({expected},) "
            f"for |L|={len(alphabet)}, k={max_length}"
        )
    if affected is None:
        affected = affected_first_labels(graph, delta, max_length, labels=alphabet)
    vector = np.array(old_vector, dtype=np.int64)
    if not affected:
        return vector
    backend, worker_count = resolve_backend(backend, workers, len(affected))
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)
    matrices = matrix_store.as_dict(alphabet)
    starts = domain_block_starts(len(alphabet), max_length)
    _build_subtrees_into(
        vector,
        matrices,
        alphabet,
        affected,
        max_length,
        starts,
        backend,
        worker_count,
        progress,
    )
    return vector
