"""Enumeration of the label-path domain ``Lk``.

``Lk`` is the set of all label paths over the alphabet ``L`` with length up to
``k`` (Section 2 of the paper); its size is ``|L| + |L|² + ... + |L|^k``.
This module enumerates ``Lk`` and — more importantly — computes the true
selectivity ``f(ℓ)`` of *every* path in ``Lk`` in a single prefix-sharing
depth-first traversal over boolean matrix products, which is what makes
building the full catalog for ``k = 6`` feasible.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, Sequence

from repro.exceptions import PathError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.matrices import LabelMatrixStore
from repro.paths.label_path import LabelPath

__all__ = [
    "domain_size",
    "enumerate_label_paths",
    "compute_selectivities",
]


def domain_size(label_count: int, max_length: int) -> int:
    """The size ``|Lk| = Σ_{i=1..k} |L|^i`` of the label-path domain."""
    if label_count < 1:
        raise PathError("label_count must be >= 1")
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    if label_count == 1:
        return max_length
    return (label_count ** (max_length + 1) - label_count) // (label_count - 1)


def enumerate_label_paths(
    labels: Sequence[str], max_length: int
) -> Iterator[LabelPath]:
    """Yield every label path of length ``1..max_length`` over ``labels``.

    Paths are yielded in *numerical-alphabetical* order: shorter paths first,
    ties broken by the alphabetical order of ``labels`` position by position.
    This is the paper's native domain order and the baseline the orderings
    are compared against.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    ordered_labels = sorted(labels)
    if not ordered_labels:
        raise PathError("the label alphabet must not be empty")
    for length in range(1, max_length + 1):
        for combo in itertools.product(ordered_labels, repeat=length):
            yield LabelPath(combo)


def compute_selectivities(
    graph: LabeledDiGraph,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    prune_empty: bool = False,
    progress: Optional[Callable[[int], None]] = None,
) -> dict[LabelPath, int]:
    """Compute ``f(ℓ)`` for every ``ℓ ∈ Lk`` on ``graph``.

    The computation shares prefixes: the boolean reachability matrix of a
    prefix is computed once and extended by every label, so the total number
    of sparse matrix products equals the number of internal nodes of the
    label-path trie rather than ``k`` per path.

    Parameters
    ----------
    prune_empty:
        When ``True``, subtrees rooted at a path with zero selectivity are
        skipped (their extensions necessarily also have zero selectivity) and
        those paths are *omitted* from the result.  The histogram experiments
        keep zeros (``False``) because the domain must cover all of ``Lk``.
    progress:
        Optional callback invoked with the running number of paths processed,
        used by the CLI to report progress on large catalogs.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    alphabet = sorted(labels) if labels is not None else graph.labels()
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)

    selectivities: dict[LabelPath, int] = {}
    processed = 0

    def visit(prefix_labels: tuple[str, ...], prefix_matrix) -> None:
        nonlocal processed
        for label in alphabet:
            labels_here = prefix_labels + (label,)
            matrix = (
                matrix_store.matrix(label)
                if prefix_matrix is None
                else matrix_store.extend(prefix_matrix, label)
            )
            count = int(matrix.nnz)
            path = LabelPath(labels_here)
            if count > 0 or not prune_empty:
                selectivities[path] = count
            processed += 1
            if progress is not None and processed % 1000 == 0:
                progress(processed)
            if len(labels_here) < max_length and (count > 0 or not prune_empty):
                if count == 0:
                    # All extensions of an empty result are empty: record zeros
                    # without multiplying matrices.
                    _record_zero_subtree(labels_here)
                else:
                    visit(labels_here, matrix)

    def _record_zero_subtree(prefix_labels: tuple[str, ...]) -> None:
        nonlocal processed
        remaining = max_length - len(prefix_labels)
        for extra in range(1, remaining + 1):
            for combo in itertools.product(alphabet, repeat=extra):
                selectivities[LabelPath(prefix_labels + combo)] = 0
                processed += 1

    visit((), None)
    return selectivities
