"""Enumeration of the label-path domain ``Lk``.

``Lk`` is the set of all label paths over the alphabet ``L`` with length up to
``k`` (Section 2 of the paper); its size is ``|L| + |L|² + ... + |L|^k``.
This module enumerates ``Lk`` and — more importantly — computes the true
selectivity ``f(ℓ)`` of *every* path in ``Lk`` in a single prefix-sharing
depth-first traversal over boolean matrix products, which is what makes
building the full catalog for ``k = 6`` feasible.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, Optional, Sequence

from repro.exceptions import PathError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.matrices import LabelMatrixStore
from repro.paths.label_path import LabelPath

__all__ = [
    "domain_size",
    "enumerate_label_paths",
    "compute_selectivities",
    "compute_selectivities_parallel",
]


def domain_size(label_count: int, max_length: int) -> int:
    """The size ``|Lk| = Σ_{i=1..k} |L|^i`` of the label-path domain."""
    if label_count < 1:
        raise PathError("label_count must be >= 1")
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    if label_count == 1:
        return max_length
    return (label_count ** (max_length + 1) - label_count) // (label_count - 1)


def enumerate_label_paths(
    labels: Sequence[str], max_length: int
) -> Iterator[LabelPath]:
    """Yield every label path of length ``1..max_length`` over ``labels``.

    Paths are yielded in *numerical-alphabetical* order: shorter paths first,
    ties broken by the alphabetical order of ``labels`` position by position.
    This is the paper's native domain order and the baseline the orderings
    are compared against.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    ordered_labels = sorted(labels)
    if not ordered_labels:
        raise PathError("the label alphabet must not be empty")
    for length in range(1, max_length + 1):
        for combo in itertools.product(ordered_labels, repeat=length):
            yield LabelPath(combo)


def compute_selectivities(
    graph: LabeledDiGraph,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    prune_empty: bool = False,
    progress: Optional[Callable[[int], None]] = None,
    roots: Optional[Sequence[str]] = None,
) -> dict[LabelPath, int]:
    """Compute ``f(ℓ)`` for every ``ℓ ∈ Lk`` on ``graph``.

    The computation shares prefixes: the boolean reachability matrix of a
    prefix is computed once and extended by every label, so the total number
    of sparse matrix products equals the number of internal nodes of the
    label-path trie rather than ``k`` per path.

    Parameters
    ----------
    prune_empty:
        When ``True``, subtrees rooted at a path with zero selectivity are
        skipped (their extensions necessarily also have zero selectivity) and
        those paths are *omitted* from the result.  The histogram experiments
        keep zeros (``False``) because the domain must cover all of ``Lk``.
    progress:
        Optional callback invoked with the running number of paths processed,
        used by the CLI to report progress on large catalogs.
    roots:
        Optional restriction of the *first* label: only the subtrees of the
        label-path trie rooted at these labels are evaluated.  Extensions
        still range over the full alphabet.  This is the unit of work that
        :func:`compute_selectivities_parallel` distributes across workers.
    """
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    alphabet = sorted(labels) if labels is not None else graph.labels()
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    if roots is None:
        first_labels = alphabet
    else:
        unknown = sorted(set(roots) - set(alphabet))
        if unknown:
            raise PathError(f"roots outside the label alphabet: {', '.join(unknown)}")
        first_labels = [label for label in alphabet if label in set(roots)]
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)

    selectivities: dict[LabelPath, int] = {}
    processed = 0

    def visit(prefix_labels: tuple[str, ...], prefix_matrix) -> None:
        nonlocal processed
        extensions = first_labels if not prefix_labels else alphabet
        for label in extensions:
            labels_here = prefix_labels + (label,)
            matrix = (
                matrix_store.matrix(label)
                if prefix_matrix is None
                else matrix_store.extend(prefix_matrix, label)
            )
            count = int(matrix.nnz)
            path = LabelPath(labels_here)
            if count > 0 or not prune_empty:
                selectivities[path] = count
            processed += 1
            if progress is not None and processed % 1000 == 0:
                progress(processed)
            if len(labels_here) < max_length and (count > 0 or not prune_empty):
                if count == 0:
                    # All extensions of an empty result are empty: record zeros
                    # without multiplying matrices.
                    _record_zero_subtree(labels_here)
                else:
                    visit(labels_here, matrix)

    def _record_zero_subtree(prefix_labels: tuple[str, ...]) -> None:
        nonlocal processed
        remaining = max_length - len(prefix_labels)
        for extra in range(1, remaining + 1):
            for combo in itertools.product(alphabet, repeat=extra):
                selectivities[LabelPath(prefix_labels + combo)] = 0
                processed += 1

    visit((), None)
    return selectivities


def default_worker_count(label_count: int) -> int:
    """Worker count used when a parallel build is requested without one."""
    return max(1, min(label_count, os.cpu_count() or 1))


def compute_selectivities_parallel(
    graph: LabeledDiGraph,
    max_length: int,
    *,
    labels: Optional[Sequence[str]] = None,
    store: Optional[LabelMatrixStore] = None,
    prune_empty: bool = False,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int], None]] = None,
) -> dict[LabelPath, int]:
    """Parallel :func:`compute_selectivities` over first-label subtrees.

    The label-path trie decomposes into ``|L|`` independent subtrees, one per
    first label; each worker runs the prefix-sharing DFS on one subtree,
    sharing the read-only per-label matrices.  Threads (not processes) are
    used because the heavy lifting is scipy's sparse matmul, which releases
    the GIL, and the graph/matrix store need not be pickled.

    ``workers=None`` picks ``min(|L|, cpu_count)``; ``workers=1`` degrades to
    the serial implementation.  Results are identical to the serial builder.
    ``progress`` receives the *combined* running path count across workers
    (called from worker threads; the callback must be thread-safe).
    """
    if workers is not None and workers < 1:
        raise PathError("workers must be >= 1")
    alphabet = sorted(labels) if labels is not None else graph.labels()
    if not alphabet:
        raise PathError("the graph has no edge labels to enumerate")
    worker_count = workers if workers is not None else default_worker_count(len(alphabet))
    matrix_store = store if store is not None else LabelMatrixStore(graph, labels=alphabet)
    if worker_count <= 1 or len(alphabet) == 1:
        return compute_selectivities(
            graph,
            max_length,
            labels=alphabet,
            store=matrix_store,
            prune_empty=prune_empty,
            progress=progress,
        )

    # Each worker reports its own cumulative count; per-worker adapters fold
    # the deltas into one shared total so ``progress`` sees the combined count.
    progress_lock = threading.Lock()
    progress_total = [0]

    def _subtree_progress() -> Optional[Callable[[int], None]]:
        if progress is None:
            return None
        last = [0]

        def adapter(processed: int) -> None:
            with progress_lock:
                progress_total[0] += processed - last[0]
                last[0] = processed
                combined = progress_total[0]
            progress(combined)

        return adapter
    # Materialise every per-label matrix up front so workers only ever read
    # the store's cache (lazy fill from multiple threads would duplicate work).
    for label in alphabet:
        matrix_store.matrix(label)
    selectivities: dict[LabelPath, int] = {}
    with ThreadPoolExecutor(max_workers=worker_count) as pool:
        futures = [
            pool.submit(
                compute_selectivities,
                graph,
                max_length,
                labels=alphabet,
                store=matrix_store,
                prune_empty=prune_empty,
                roots=(label,),
                progress=_subtree_progress(),
            )
            for label in alphabet
        ]
        for future in futures:
            selectivities.update(future.result())
    return selectivities
