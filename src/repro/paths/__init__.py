"""Label paths: value type, evaluation, enumeration, catalog and splitting."""

from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import (
    compute_selectivities,
    compute_selectivities_parallel,
    compute_selectivity_vector,
    domain_size,
    enumerate_label_paths,
    update_selectivity_vector,
)
from repro.paths.evaluation import (
    BFSPathEvaluator,
    MatrixPathEvaluator,
    PathEvaluator,
    evaluate_path,
    path_selectivity,
)
from repro.paths.index import (
    PathIndex,
    domain_index_to_path,
    path_to_domain_index,
    paths_to_domain_indices,
)
from repro.paths.label_path import SEPARATOR, LabelPath, as_label_path
from repro.paths.splitting import (
    BaseLabelSet,
    GreedySplitter,
    edge_label_base_set,
    length_bounded_base_set,
)

__all__ = [
    "SEPARATOR",
    "BaseLabelSet",
    "BFSPathEvaluator",
    "GreedySplitter",
    "LabelPath",
    "MatrixPathEvaluator",
    "PathEvaluator",
    "PathIndex",
    "SelectivityCatalog",
    "as_label_path",
    "compute_selectivities",
    "compute_selectivities_parallel",
    "compute_selectivity_vector",
    "domain_index_to_path",
    "domain_size",
    "edge_label_base_set",
    "enumerate_label_paths",
    "evaluate_path",
    "length_bounded_base_set",
    "path_selectivity",
    "path_to_domain_index",
    "paths_to_domain_indices",
    "update_selectivity_vector",
]
