"""Base label sets and splitting rules (Section 3.1 of the paper).

An ordering method starts from a *base label set* ``B ⊆ L*`` such that every
label path decomposes into pieces that are all in ``B``, together with a
*splitting rule* describing how the decomposition is performed.  The paper's
main experiments use ``B = L`` (single edge labels), but its future-work
section proposes richer base sets such as ``L2`` (all paths up to length 2)
to capture correlations between adjacent labels; this module supports both.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.exceptions import PathError
from repro.paths.label_path import LabelPath, as_label_path

__all__ = [
    "BaseLabelSet",
    "GreedySplitter",
    "edge_label_base_set",
    "length_bounded_base_set",
]

PathLike = Union[str, LabelPath]


class BaseLabelSet:
    """A base label set ``B``: a finite set of label paths used as atoms.

    The single edge labels must always be included (otherwise some label path
    could not be decomposed at all, see the paper's footnote 2); the
    constructor enforces this.
    """

    def __init__(self, members: Iterable[PathLike], labels: Sequence[str]) -> None:
        self._labels = tuple(sorted(set(labels)))
        member_paths = {as_label_path(member) for member in members}
        missing = [
            label
            for label in self._labels
            if LabelPath.single(label) not in member_paths
        ]
        if missing:
            raise PathError(
                "base label set must contain every single edge label; missing: "
                + ", ".join(missing)
            )
        for member in member_paths:
            for label in member:
                if label not in self._labels:
                    raise PathError(
                        f"base path {member} uses label {label!r} outside the alphabet"
                    )
        self._members = frozenset(member_paths)
        self._max_member_length = max(member.length for member in self._members)

    @property
    def labels(self) -> tuple[str, ...]:
        """The underlying edge-label alphabet ``L``."""
        return self._labels

    @property
    def members(self) -> frozenset[LabelPath]:
        """The base paths."""
        return self._members

    @property
    def max_member_length(self) -> int:
        """Length of the longest base path."""
        return self._max_member_length

    def __contains__(self, path: object) -> bool:
        if isinstance(path, (str, LabelPath)):
            return as_label_path(path) in self._members
        return False

    def __len__(self) -> int:
        return len(self._members)

    def sorted_members(self) -> list[LabelPath]:
        """Members sorted by (length, labels) for deterministic iteration."""
        return sorted(self._members, key=lambda p: (p.length, p.labels))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<BaseLabelSet |B|={len(self._members)} max_len={self._max_member_length}>"


def edge_label_base_set(labels: Sequence[str]) -> BaseLabelSet:
    """The paper's default base set ``B = L`` (each single edge label)."""
    return BaseLabelSet((LabelPath.single(label) for label in labels), labels)


def length_bounded_base_set(labels: Sequence[str], max_length: int) -> BaseLabelSet:
    """The base set ``B = L_max_length`` (all label paths up to ``max_length``).

    ``max_length = 2`` gives the ``L2`` base set the paper proposes as future
    work for capturing adjacent-label correlations.
    """
    from repro.paths.enumeration import enumerate_label_paths

    if max_length < 1:
        raise PathError("max_length must be >= 1")
    return BaseLabelSet(enumerate_label_paths(labels, max_length), labels)


class GreedySplitter:
    """The greedy splitting rule of Section 3.1.

    At each step the splitter cuts off the *longest* prefix of the remaining
    path that is a member of the base set.  With ``B = L`` this degenerates to
    splitting into single labels; with richer base sets it prefers long atoms,
    e.g. ``"4/4/3/3/6"`` over ``B = L2`` splits into ``"4/4"``, ``"3/3"``,
    ``"6"`` exactly as in the paper's example.
    """

    def __init__(self, base_set: BaseLabelSet) -> None:
        self._base_set = base_set

    @property
    def base_set(self) -> BaseLabelSet:
        """The base label set the splitter cuts against."""
        return self._base_set

    def split(self, path: PathLike) -> list[LabelPath]:
        """Decompose ``path`` into base-set pieces (greedy, longest-first)."""
        label_path = as_label_path(path)
        pieces: list[LabelPath] = []
        position = 0
        labels = label_path.labels
        total = len(labels)
        max_piece = self._base_set.max_member_length
        while position < total:
            piece = None
            # Try the longest admissible piece first (greedy rule).
            for piece_length in range(min(max_piece, total - position), 0, -1):
                candidate = LabelPath(labels[position:position + piece_length])
                if candidate in self._base_set:
                    piece = candidate
                    break
            if piece is None:
                raise PathError(
                    f"path {label_path} cannot be decomposed over the base set "
                    f"(stuck at position {position})"
                )
            pieces.append(piece)
            position += piece.length
        return pieces

    def piece_count(self, path: PathLike) -> int:
        """Number of pieces the greedy decomposition of ``path`` produces."""
        return len(self.split(path))
