"""Path indexing: domain arithmetic and the materialised path index.

Two kinds of "index" live here:

* **Domain indexing** — the canonical bijection between label paths and the
  integer interval ``[0, |Lk|)`` in numerical-alphabetical order (shorter
  paths first, ties broken position by position over the sorted alphabet).
  A path is a base-``|L|`` number whose digits are label ranks, offset by the
  sizes of the shorter-length blocks.  The columnar
  :class:`~repro.paths.catalog.SelectivityCatalog` stores its frequency
  vector in exactly this order, so these functions are the only translation
  layer between :class:`LabelPath` objects and array positions.  Scalar and
  vectorised forms are provided; the vectorised forms group paths by length
  and resolve each group with one base-``|L|`` dot product.

* **Materialised path indexing** — :class:`PathIndex`, the paper's substrate
  from Fletcher et al. (EDBT 2016 — reference [6]): for every label path up
  to a small length ``j`` the full result set ``ℓ(G)`` is stored so longer
  queries can be answered by joining indexed sub-paths.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.exceptions import PathError, UnknownLabelError
from repro.graph.digraph import LabeledDiGraph
from repro.paths.label_path import LabelPath, as_label_path

__all__ = [
    "PathIndex",
    "domain_block_starts",
    "path_to_domain_index",
    "domain_index_to_path",
    "paths_to_domain_indices",
    "domain_indices_to_paths",
    "canonical_digit_blocks",
]

PathLike = Union[str, LabelPath]
Pair = tuple[object, object]


# ----------------------------------------------------------------------
# domain arithmetic (canonical numerical-alphabetical order)
# ----------------------------------------------------------------------
def domain_block_starts(label_count: int, max_length: int) -> np.ndarray:
    """Start index of every path-length block of the canonical domain order.

    Returns an ``int64`` array ``starts`` of ``max_length + 1`` entries where
    ``starts[m]`` is the domain index of the first path of length ``m + 1``
    (so ``starts[0] == 0``) and ``starts[max_length]`` equals ``|Lk|``.
    """
    if label_count < 1:
        raise PathError("label_count must be >= 1")
    if max_length < 1:
        raise PathError("max_length must be >= 1")
    sizes = label_count ** np.arange(1, max_length + 1, dtype=np.int64)
    return np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(sizes)))


def _rank_of(alphabet: Sequence[str]) -> dict[str, int]:
    """Label -> digit map over the *sorted* canonical alphabet."""
    ordered = sorted(alphabet)
    if not ordered:
        raise PathError("the label alphabet must not be empty")
    return {label: digit for digit, label in enumerate(ordered)}


def path_to_domain_index(path: PathLike, alphabet: Sequence[str]) -> int:
    """Domain index of ``path`` in the canonical numerical-alphabetical order.

    The index is ``starts[len - 1] + Σ digit_j · |L|^(len - 1 - j)`` where
    the digits are the positions of the path's labels in the sorted alphabet.
    Raises :class:`UnknownLabelError` for labels outside the alphabet.
    """
    label_path = as_label_path(path)
    rank_of = _rank_of(alphabet)
    base = len(rank_of)
    value = 0
    for label in label_path:
        digit = rank_of.get(label)
        if digit is None:
            raise UnknownLabelError(label)
        value = value * base + digit
    offset = sum(base**i for i in range(1, label_path.length))
    return offset + value


def domain_index_to_path(index: int, alphabet: Sequence[str]) -> LabelPath:
    """The label path at canonical domain ``index`` (inverse of ranking)."""
    if index < 0:
        raise PathError(f"domain index must be >= 0, got {index}")
    ordered = sorted(alphabet)
    if not ordered:
        raise PathError("the label alphabet must not be empty")
    base = len(ordered)
    length = 1
    remaining = int(index)
    while remaining >= base**length:
        remaining -= base**length
        length += 1
    digits = [0] * length
    for position in range(length - 1, -1, -1):
        digits[position] = remaining % base
        remaining //= base
    return LabelPath(ordered[digit] for digit in digits)


def paths_to_domain_indices(
    paths: Sequence[PathLike],
    alphabet: Sequence[str],
    *,
    max_length: Optional[int] = None,
) -> np.ndarray:
    """Canonical domain indices of a batch of paths (vectorised per length).

    Paths are grouped by length; each group's digit matrix is resolved with a
    single base-``|L|`` dot product.  ``max_length``, when given, rejects
    longer paths with :class:`PathError` (the catalog uses this to refuse
    out-of-domain queries).
    """
    rank_of = _rank_of(alphabet)
    base = len(rank_of)
    count = len(paths)
    out = np.empty(count, dtype=np.int64)
    by_length: dict[int, tuple[list[int], list[tuple[int, ...]]]] = {}
    for position, path in enumerate(paths):
        label_path = as_label_path(path)
        length = label_path.length
        if max_length is not None and length > max_length:
            raise PathError(
                f"path {label_path} longer than max_length={max_length}"
            )
        try:
            digits = tuple(rank_of[label] for label in label_path)
        except KeyError as exc:
            raise UnknownLabelError(exc.args[0]) from None
        positions, rows = by_length.setdefault(length, ([], []))
        positions.append(position)
        rows.append(digits)
    starts = domain_block_starts(base, max(by_length) if by_length else 1)
    for length, (positions, rows) in by_length.items():
        digit_matrix = np.asarray(rows, dtype=np.int64)
        powers = base ** np.arange(length - 1, -1, -1, dtype=np.int64)
        out[positions] = starts[length - 1] + digit_matrix @ powers
    return out


def domain_indices_to_paths(
    indices: Sequence[int], alphabet: Sequence[str], max_length: int
) -> list[LabelPath]:
    """Label paths at a batch of canonical domain indices (vectorised unrank).

    The digits of every index are peeled off with vectorised modular
    arithmetic through :func:`canonical_digit_blocks`, one length group at a
    time, and the paths are assembled through the unchecked
    ``LabelPath`` fast path (the labels come from the validated alphabet).
    Indices outside ``[0, |Lk|)`` raise :class:`PathError`.
    """
    ordered = sorted(alphabet)
    if not ordered:
        raise PathError("the label alphabet must not be empty")
    index_array = np.asarray(indices, dtype=np.int64)
    if index_array.size == 0:
        return []
    label_array = np.asarray(ordered, dtype=object)
    out: list[Optional[LabelPath]] = [None] * index_array.size
    for _, positions, digits in canonical_digit_blocks(
        len(ordered), max_length, index_array
    ):
        rows = label_array[digits]
        for position, row in zip(positions.tolist(), rows):
            out[position] = LabelPath._from_validated(tuple(row))
    return out  # type: ignore[return-value]


def canonical_digit_blocks(
    label_count: int,
    max_length: int,
    indices: Optional[np.ndarray] = None,
) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
    """Decompose canonical domain indices into per-length digit matrices.

    Yields ``(length, positions, digits)`` groups: ``positions`` are the
    positions of the group's members in the input (for ``indices=None`` — the
    full domain in canonical order — they are the contiguous block indices
    themselves), and ``digits`` is the ``(len(positions), length)`` ``int64``
    matrix of base-``|L|`` digits over the *sorted* alphabet, most significant
    digit first.  This is the shared substrate of the orderings' vectorised
    ``index_array`` implementations: every ordering rule is a closed-form
    function of these digits.
    """
    starts = domain_block_starts(label_count, max_length)
    if indices is None:
        for length in range(1, max_length + 1):
            block = label_count**length
            positions = np.arange(starts[length - 1], starts[length], dtype=np.int64)
            remaining = np.arange(block, dtype=np.int64)
            digits = np.empty((block, length), dtype=np.int64)
            for position in range(length - 1, -1, -1):
                digits[:, position] = remaining % label_count
                remaining //= label_count
            yield length, positions, digits
        return
    index_array = np.asarray(indices, dtype=np.int64)
    if index_array.size == 0:
        return
    if index_array.min(initial=0) < 0 or index_array.max(initial=0) >= starts[-1]:
        raise PathError(
            f"domain index out of range [0, {int(starts[-1])}) for "
            f"|L|={label_count}, k={max_length}"
        )
    lengths = np.searchsorted(starts, index_array, side="right")
    for length in np.unique(lengths):
        member = np.nonzero(lengths == length)[0]
        remaining = index_array[member] - starts[length - 1]
        digits = np.empty((member.size, int(length)), dtype=np.int64)
        for position in range(int(length) - 1, -1, -1):
            digits[:, position] = remaining % label_count
            remaining //= label_count
        yield int(length), member, digits


class PathIndex:
    """Materialised ``ℓ(G)`` pair sets for every label path with ``|ℓ| ≤ j``.

    Parameters
    ----------
    graph:
        The graph to index (snapshotted at construction time).
    max_length:
        The indexing depth ``j``.  Memory grows with
        ``Σ_m |L|^m · avg(|ℓ(G)|)``; typical deployments keep ``j ≤ 3``.
    labels:
        Optional restriction of the label alphabet.
    prune_empty:
        When ``True`` (default) paths with an empty result are not stored
        (lookups still answer them — with the empty set).
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        max_length: int,
        *,
        labels: Optional[Sequence[str]] = None,
        prune_empty: bool = True,
    ) -> None:
        if max_length < 1:
            raise PathError("max_length must be >= 1")
        self._graph = graph
        self._max_length = max_length
        self._labels = tuple(sorted(labels) if labels is not None else graph.labels())
        self._prune_empty = prune_empty
        self._pairs: dict[LabelPath, frozenset[Pair]] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        # Length 1: straight from the per-label edge sets.
        previous_level: dict[LabelPath, frozenset[Pair]] = {}
        for label in self._labels:
            pairs = frozenset(
                (edge.source, edge.target) for edge in self._graph.edges_with_label(label)
            )
            path = LabelPath.single(label)
            previous_level[path] = pairs
            if pairs or not self._prune_empty:
                self._pairs[path] = pairs
        # Length m: extend every length m-1 result by one label via hash join.
        for _ in range(2, self._max_length + 1):
            current_level: dict[LabelPath, frozenset[Pair]] = {}
            for prefix_path, prefix_pairs in previous_level.items():
                if not prefix_pairs:
                    continue
                by_target: dict[object, list[object]] = {}
                for source, target in prefix_pairs:
                    by_target.setdefault(target, []).append(source)
                for label in self._labels:
                    extended: set[Pair] = set()
                    adjacency = (
                        self._graph.forward_adjacency(label)
                        if self._graph.has_label(label)
                        else {}
                    )
                    for middle, sources in by_target.items():
                        for end in adjacency.get(middle, ()):
                            for source in sources:
                                extended.add((source, end))
                    path = prefix_path.concat(label)
                    pairs = frozenset(extended)
                    current_level[path] = pairs
                    if pairs or not self._prune_empty:
                        self._pairs[path] = pairs
            previous_level = current_level

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def max_length(self) -> int:
        """The indexing depth ``j``."""
        return self._max_length

    @property
    def labels(self) -> tuple[str, ...]:
        """The indexed label alphabet."""
        return self._labels

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, path: object) -> bool:
        if isinstance(path, (str, LabelPath)):
            return as_label_path(path) in self._pairs
        return False

    def indexed_paths(self) -> Iterator[LabelPath]:
        """Iterate over the stored (non-pruned) paths."""
        return iter(self._pairs)

    def pairs(self, path: PathLike) -> frozenset[Pair]:
        """The indexed pair set ``ℓ(G)`` of a path with ``|ℓ| ≤ j``."""
        label_path = as_label_path(path)
        if label_path.length > self._max_length:
            raise PathError(
                f"path {label_path} longer than the index depth j={self._max_length}"
            )
        return self._pairs.get(label_path, frozenset())

    def selectivity(self, path: PathLike) -> int:
        """``f(ℓ)`` for an indexed path."""
        return len(self.pairs(path))

    def total_stored_pairs(self) -> int:
        """Total number of stored pairs (the index's memory footprint driver)."""
        return sum(len(pairs) for pairs in self._pairs.values())

    # ------------------------------------------------------------------
    # evaluation of longer paths via the index
    # ------------------------------------------------------------------
    def evaluate(self, path: PathLike) -> set[Pair]:
        """Evaluate a path of *any* length by joining indexed sub-paths.

        The path is split greedily into chunks of at most ``j`` labels; the
        chunks' indexed pair sets are hash-joined left to right.  For paths
        with ``|ℓ| ≤ j`` this is a single lookup.
        """
        label_path = as_label_path(path)
        chunks: list[LabelPath] = []
        labels = label_path.labels
        for start in range(0, len(labels), self._max_length):
            chunks.append(LabelPath(labels[start:start + self._max_length]))
        result: Optional[set[Pair]] = None
        for chunk in chunks:
            chunk_pairs = self.pairs(chunk)
            if result is None:
                result = set(chunk_pairs)
                continue
            by_source: dict[object, list[object]] = {}
            for source, target in chunk_pairs:
                by_source.setdefault(source, []).append(target)
            joined: set[Pair] = set()
            for source, middle in result:
                for end in by_source.get(middle, ()):
                    joined.add((source, end))
            result = joined
            if not result:
                break
        return result if result is not None else set()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<PathIndex j={self._max_length} |L|={len(self._labels)} "
            f"stored_paths={len(self._pairs)} stored_pairs={self.total_stored_pairs()}>"
        )
