"""A materialised path index.

The paper builds on a line of work that evaluates regular path queries with
*path indexes* (Fletcher et al., EDBT 2016 — reference [6] of the paper): for
every label path up to a small length ``j``, the index stores the full result
set ``ℓ(G)`` so that longer queries can be answered by joining indexed
sub-paths instead of traversing the graph edge by edge.

:class:`PathIndex` implements that substrate.  It is used two ways in this
reproduction:

* as an alternative execution backend for the optimizer's scan leaves
  (``PlanExecutor`` traverses the graph; an index lookup is O(1) per leaf);
* as an independent cross-check of the selectivity catalog in the test-suite
  (``index.selectivity(ℓ) == catalog.selectivity(ℓ)`` for all ``ℓ``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from repro.exceptions import PathError
from repro.graph.digraph import LabeledDiGraph
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["PathIndex"]

PathLike = Union[str, LabelPath]
Pair = tuple[object, object]


class PathIndex:
    """Materialised ``ℓ(G)`` pair sets for every label path with ``|ℓ| ≤ j``.

    Parameters
    ----------
    graph:
        The graph to index (snapshotted at construction time).
    max_length:
        The indexing depth ``j``.  Memory grows with
        ``Σ_m |L|^m · avg(|ℓ(G)|)``; typical deployments keep ``j ≤ 3``.
    labels:
        Optional restriction of the label alphabet.
    prune_empty:
        When ``True`` (default) paths with an empty result are not stored
        (lookups still answer them — with the empty set).
    """

    def __init__(
        self,
        graph: LabeledDiGraph,
        max_length: int,
        *,
        labels: Optional[Sequence[str]] = None,
        prune_empty: bool = True,
    ) -> None:
        if max_length < 1:
            raise PathError("max_length must be >= 1")
        self._graph = graph
        self._max_length = max_length
        self._labels = tuple(sorted(labels) if labels is not None else graph.labels())
        self._prune_empty = prune_empty
        self._pairs: dict[LabelPath, frozenset[Pair]] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        # Length 1: straight from the per-label edge sets.
        previous_level: dict[LabelPath, frozenset[Pair]] = {}
        for label in self._labels:
            pairs = frozenset(
                (edge.source, edge.target) for edge in self._graph.edges_with_label(label)
            )
            path = LabelPath.single(label)
            previous_level[path] = pairs
            if pairs or not self._prune_empty:
                self._pairs[path] = pairs
        # Length m: extend every length m-1 result by one label via hash join.
        for _ in range(2, self._max_length + 1):
            current_level: dict[LabelPath, frozenset[Pair]] = {}
            for prefix_path, prefix_pairs in previous_level.items():
                if not prefix_pairs:
                    continue
                by_target: dict[object, list[object]] = {}
                for source, target in prefix_pairs:
                    by_target.setdefault(target, []).append(source)
                for label in self._labels:
                    extended: set[Pair] = set()
                    adjacency = (
                        self._graph.forward_adjacency(label)
                        if self._graph.has_label(label)
                        else {}
                    )
                    for middle, sources in by_target.items():
                        for end in adjacency.get(middle, ()):
                            for source in sources:
                                extended.add((source, end))
                    path = prefix_path.concat(label)
                    pairs = frozenset(extended)
                    current_level[path] = pairs
                    if pairs or not self._prune_empty:
                        self._pairs[path] = pairs
            previous_level = current_level

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def max_length(self) -> int:
        """The indexing depth ``j``."""
        return self._max_length

    @property
    def labels(self) -> tuple[str, ...]:
        """The indexed label alphabet."""
        return self._labels

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, path: object) -> bool:
        if isinstance(path, (str, LabelPath)):
            return as_label_path(path) in self._pairs
        return False

    def indexed_paths(self) -> Iterator[LabelPath]:
        """Iterate over the stored (non-pruned) paths."""
        return iter(self._pairs)

    def pairs(self, path: PathLike) -> frozenset[Pair]:
        """The indexed pair set ``ℓ(G)`` of a path with ``|ℓ| ≤ j``."""
        label_path = as_label_path(path)
        if label_path.length > self._max_length:
            raise PathError(
                f"path {label_path} longer than the index depth j={self._max_length}"
            )
        return self._pairs.get(label_path, frozenset())

    def selectivity(self, path: PathLike) -> int:
        """``f(ℓ)`` for an indexed path."""
        return len(self.pairs(path))

    def total_stored_pairs(self) -> int:
        """Total number of stored pairs (the index's memory footprint driver)."""
        return sum(len(pairs) for pairs in self._pairs.values())

    # ------------------------------------------------------------------
    # evaluation of longer paths via the index
    # ------------------------------------------------------------------
    def evaluate(self, path: PathLike) -> set[Pair]:
        """Evaluate a path of *any* length by joining indexed sub-paths.

        The path is split greedily into chunks of at most ``j`` labels; the
        chunks' indexed pair sets are hash-joined left to right.  For paths
        with ``|ℓ| ≤ j`` this is a single lookup.
        """
        label_path = as_label_path(path)
        chunks: list[LabelPath] = []
        labels = label_path.labels
        for start in range(0, len(labels), self._max_length):
            chunks.append(LabelPath(labels[start:start + self._max_length]))
        result: Optional[set[Pair]] = None
        for chunk in chunks:
            chunk_pairs = self.pairs(chunk)
            if result is None:
                result = set(chunk_pairs)
                continue
            by_source: dict[object, list[object]] = {}
            for source, target in chunk_pairs:
                by_source.setdefault(source, []).append(target)
            joined: set[Pair] = set()
            for source, middle in result:
                for end in by_source.get(middle, ()):
                    joined.add((source, end))
            result = joined
            if not result:
                break
        return result if result is not None else set()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<PathIndex j={self._max_length} |L|={len(self._labels)} "
            f"stored_paths={len(self._pairs)} stored_pairs={self.total_stored_pairs()}>"
        )
