"""The :class:`LabelPath` value type.

A *k-label path* is a sequence ``ℓ = l1/l2/.../lk`` of edge labels.  Viewed as
a query it returns all vertex pairs connected by a path spelling those labels
(Section 2 of the paper).  ``LabelPath`` is the immutable value type used
throughout the library: orderings map it to integers, the catalog stores its
selectivity, and the evaluator executes it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Union

from repro.exceptions import InvalidLabelPathError

__all__ = ["LabelPath", "SEPARATOR"]

#: Separator used in the textual form ``"a/b/c"`` (the paper's notation).
SEPARATOR = "/"


class LabelPath:
    """An immutable sequence of edge labels, e.g. ``LabelPath.parse("1/2/3")``.

    ``LabelPath`` behaves like a tuple of label strings: it is hashable,
    comparable for equality, iterable, indexable and sliceable (slicing
    returns another ``LabelPath``).
    """

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[str]) -> None:
        labels_tuple = tuple(labels)
        if not labels_tuple:
            raise InvalidLabelPathError("a label path must contain at least one label")
        for label in labels_tuple:
            if not isinstance(label, str):
                raise InvalidLabelPathError(
                    f"labels must be strings, got {type(label).__name__}: {label!r}"
                )
            if not label:
                raise InvalidLabelPathError("labels must be non-empty strings")
            if SEPARATOR in label:
                raise InvalidLabelPathError(
                    f"label {label!r} must not contain the separator {SEPARATOR!r}"
                )
        self._labels = labels_tuple

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: Union[str, "LabelPath"]) -> "LabelPath":
        """Parse the textual form ``"l1/l2/.../lk"`` into a ``LabelPath``.

        Passing an existing ``LabelPath`` returns it unchanged, so APIs can
        accept either form.
        """
        if isinstance(text, LabelPath):
            return text
        if not isinstance(text, str):
            raise InvalidLabelPathError(
                f"cannot parse a label path from {type(text).__name__}"
            )
        stripped = text.strip()
        if not stripped:
            raise InvalidLabelPathError("empty label path expression")
        return cls(stripped.split(SEPARATOR))

    @classmethod
    def single(cls, label: str) -> "LabelPath":
        """A length-1 path consisting of ``label``."""
        return cls((label,))

    @classmethod
    def _from_validated(cls, labels: tuple[str, ...]) -> "LabelPath":
        """Wrap an already-validated non-empty label tuple without re-checking.

        Internal fast path for the batch unranking routines, which emit
        thousands of paths whose labels all come from a validated alphabet;
        everything else should use the checked constructor.
        """
        path = cls.__new__(cls)
        path._labels = labels
        return path

    @classmethod
    def from_domain_index(cls, index: int, alphabet: Sequence[str]) -> "LabelPath":
        """The path at canonical domain ``index`` over the sorted ``alphabet``.

        Inverse of :meth:`domain_index`; see
        :func:`repro.paths.index.domain_index_to_path` for the arithmetic.
        """
        from repro.paths.index import domain_index_to_path

        return domain_index_to_path(index, alphabet)

    def domain_index(self, alphabet: Sequence[str]) -> int:
        """This path's position in the canonical numerical-alphabetical order.

        The order is the one :func:`repro.paths.enumeration.enumerate_label_paths`
        yields and the one the columnar catalog's frequency vector is laid out
        in: shorter paths first, ties resolved digit by digit over the sorted
        ``alphabet`` (base-``|L|`` arithmetic).
        """
        from repro.paths.index import path_to_domain_index

        return path_to_domain_index(self, alphabet)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """The labels as a tuple."""
        return self._labels

    @property
    def length(self) -> int:
        """The path length ``k = |ℓ|``."""
        return len(self._labels)

    @property
    def first(self) -> str:
        """The first label."""
        return self._labels[0]

    @property
    def last(self) -> str:
        """The last label."""
        return self._labels[-1]

    # ------------------------------------------------------------------
    # composition / decomposition
    # ------------------------------------------------------------------
    def concat(self, other: Union["LabelPath", str]) -> "LabelPath":
        """Concatenate with another path (or single label) on the right."""
        if isinstance(other, str):
            other = LabelPath.parse(other)
        return LabelPath(self._labels + other._labels)

    def prefix(self, length: int) -> "LabelPath":
        """The prefix of the given ``length`` (must be in ``[1, len]``)."""
        if not 1 <= length <= self.length:
            raise InvalidLabelPathError(
                f"prefix length {length} out of range for path of length {self.length}"
            )
        return LabelPath(self._labels[:length])

    def suffix(self, length: int) -> "LabelPath":
        """The suffix of the given ``length`` (must be in ``[1, len]``)."""
        if not 1 <= length <= self.length:
            raise InvalidLabelPathError(
                f"suffix length {length} out of range for path of length {self.length}"
            )
        return LabelPath(self._labels[-length:])

    def prefixes(self) -> Iterator["LabelPath"]:
        """All proper and improper prefixes, shortest first."""
        for end in range(1, self.length + 1):
            yield LabelPath(self._labels[:end])

    def split_at(self, position: int) -> tuple["LabelPath", "LabelPath"]:
        """Split into ``(self[:position], self[position:])``; both non-empty."""
        if not 1 <= position <= self.length - 1:
            raise InvalidLabelPathError(
                f"split position {position} out of range for path of length {self.length}"
            )
        return LabelPath(self._labels[:position]), LabelPath(self._labels[position:])

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __getitem__(self, item: Union[int, slice]) -> Union[str, "LabelPath"]:
        if isinstance(item, slice):
            selected = self._labels[item]
            if not selected:
                raise InvalidLabelPathError("slicing a LabelPath must keep at least one label")
            return LabelPath(selected)
        return self._labels[item]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LabelPath):
            return self._labels == other._labels
        if isinstance(other, tuple):
            return self._labels == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._labels)

    def __lt__(self, other: "LabelPath") -> bool:
        # Plain tuple comparison; the ordering framework defines the orderings
        # that actually matter, this is only for stable sorting in reports.
        if not isinstance(other, LabelPath):
            return NotImplemented
        return self._labels < other._labels

    def __str__(self) -> str:
        return SEPARATOR.join(self._labels)

    def __repr__(self) -> str:
        return f"LabelPath({str(self)!r})"


def as_label_path(value: Union[str, Sequence[str], LabelPath]) -> LabelPath:
    """Coerce a string, sequence of labels, or ``LabelPath`` to a ``LabelPath``."""
    if isinstance(value, LabelPath):
        return value
    if isinstance(value, str):
        return LabelPath.parse(value)
    return LabelPath(value)
