"""The path-selectivity catalog.

A :class:`SelectivityCatalog` stores the true selectivity ``f(ℓ)`` of every
label path in ``Lk`` for one graph.  It is the ground-truth distribution that

* orderings consult for cardinality ranking,
* histograms are built from, and
* the evaluation harness compares estimates against.

Internally the catalog is **columnar**: one index-aligned ``int64`` NumPy
frequency vector in the canonical numerical-alphabetical domain order
(position ``i`` holds ``f`` of the ``i``-th path of
:func:`~repro.paths.enumeration.enumerate_label_paths`; the bijection is the
base-``|L|`` arithmetic of :mod:`repro.paths.index`).  That is the frequency
*vector* representation the V-optimal DP literature assumes, it eliminates
per-path ``LabelPath``/dict overhead, and it serialises to a compressed
``.npz`` artifact a fraction of the size of the legacy JSON form (which is
still read and written for interoperability).

Catalogs are expensive to build for large ``k`` (they require evaluating the
whole domain), so they can be persisted and are treated as immutable once
built.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.exceptions import PathError, UnknownLabelError
from repro.graph.delta import GraphDelta
from repro.graph.digraph import LabeledDiGraph
from repro.paths.enumeration import (
    compute_selectivity_vector,
    domain_size,
    enumerate_label_paths,
    update_selectivity_vector,
)
from repro.paths.index import (
    domain_index_to_path,
    paths_to_domain_indices,
)
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["SelectivityCatalog", "CATALOG_NPZ_VERSION"]

PathLike = Union[str, LabelPath]

#: Version stamp written into (and required from) the ``.npz`` catalog format.
CATALOG_NPZ_VERSION = 1


class SelectivityCatalog:
    """True selectivities of every label path up to length ``k`` on one graph.

    Parameters
    ----------
    labels:
        The label alphabet ``L`` (sorted internally).
    max_length:
        The maximum path length ``k``.
    selectivities:
        Either a mapping from paths in ``Lk`` (or a subset — missing paths
        are treated as selectivity 0) to their true selectivity, or a dense
        ``int64`` frequency vector of ``|Lk|`` entries in canonical domain
        order.  An array is *adopted*: the catalog takes ownership and marks
        it read-only (use :meth:`from_frequencies`, which copies by default,
        when the caller keeps using the array).
    graph_name:
        Optional provenance string.
    """

    def __init__(
        self,
        labels: Sequence[str],
        max_length: int,
        selectivities: Union[Mapping[PathLike, int], np.ndarray],
        *,
        graph_name: str = "",
    ) -> None:
        if max_length < 1:
            raise PathError("max_length must be >= 1")
        if not labels:
            raise PathError("the label alphabet must not be empty")
        self._labels = tuple(sorted(set(labels)))
        # Hoisted ranking state so per-query index arithmetic is one dict
        # lookup per label, not a rebuilt rank map per call.
        self._rank_of = {label: digit for digit, label in enumerate(self._labels)}
        base = len(self._labels)
        self._block_starts = [0]
        for length in range(1, max_length):
            self._block_starts.append(self._block_starts[-1] + base**length)
        self._max_length = max_length
        self._graph_name = graph_name
        self._domain_size = domain_size(len(self._labels), max_length)
        self._total: Optional[int] = None
        self._max: Optional[int] = None
        if isinstance(selectivities, np.ndarray):
            if selectivities.shape != (self._domain_size,):
                raise PathError(
                    f"frequency vector has shape {selectivities.shape}, expected "
                    f"({self._domain_size},) for |L|={len(self._labels)}, "
                    f"k={max_length}"
                )
            if (
                isinstance(selectivities, np.memmap)
                and selectivities.dtype == np.int64
                and selectivities.flags["C_CONTIGUOUS"]
            ):
                # A memory-mapped vector is adopted as-is: converting would
                # materialise it (or silently drop the memmap type), and the
                # negative-value scan would fault in every page of an
                # artifact this library wrote and validated itself.
                frequencies = selectivities
            else:
                frequencies = np.ascontiguousarray(selectivities, dtype=np.int64)
                if frequencies.size and int(frequencies.min()) < 0:
                    position = int(np.argmin(frequencies))
                    raise PathError(
                        f"negative selectivity at domain index {position}: "
                        f"{int(frequencies[position])}"
                    )
            self._frequencies = frequencies
            self._explicit: Optional[np.ndarray] = None
        else:
            self._frequencies = np.zeros(self._domain_size, dtype=np.int64)
            explicit = np.zeros(self._domain_size, dtype=bool)
            paths = list(selectivities.keys())
            values = [selectivities[path] for path in paths]
            indices = (
                paths_to_domain_indices(paths, self._labels, max_length=max_length)
                if paths
                else np.empty(0, dtype=np.int64)
            )
            for index, path, value in zip(indices, paths, values):
                value = int(value)
                if value < 0:
                    raise PathError(
                        f"negative selectivity for {as_label_path(path)}: {value}"
                    )
                self._frequencies[index] = value
                explicit[index] = True
            # A mapping that covers the whole domain is just a dense catalog.
            self._explicit = None if bool(explicit.all()) else explicit
        self._frequencies.setflags(write=False)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: LabeledDiGraph,
        max_length: int,
        *,
        labels: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[int], None]] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> "SelectivityCatalog":
        """Build the catalog by exact evaluation of every path on ``graph``.

        Construction runs the columnar builder
        (:func:`~repro.paths.enumeration.compute_selectivity_vector`):
        counts land directly in the frequency vector, with no per-path
        ``LabelPath``/dict overhead.  ``backend`` picks ``"serial"``,
        ``"thread"`` or ``"process"``; ``None`` resolves through
        :func:`~repro.paths.enumeration.resolve_backend` (threads when
        ``workers > 1``, serial otherwise).  Results are identical across
        backends.
        """
        alphabet = sorted(labels) if labels is not None else graph.labels()
        vector = compute_selectivity_vector(
            graph,
            max_length,
            labels=alphabet,
            progress=progress,
            backend=backend,
            workers=workers,
        )
        return cls.from_frequencies(
            alphabet, max_length, vector, graph_name=graph.name or "unnamed", copy=False
        )

    def delta_requires_full_rebuild(self, graph: LabeledDiGraph) -> bool:
        """Whether :meth:`apply_delta` must fall back to a full cold rebuild.

        True when the post-delta ``graph``'s label alphabet no longer
        matches this catalog's (the canonical index space itself moved) or
        the catalog is sparse (the explicit-path mask cannot be patched).
        The engine consults the same predicate for its stats, so what is
        reported always matches what ran.
        """
        return tuple(sorted(graph.labels())) != self._labels or not self.is_dense

    def apply_delta(
        self,
        graph: LabeledDiGraph,
        delta: GraphDelta,
        *,
        progress: Optional[Callable[[int], None]] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        affected: Optional[Sequence[str]] = None,
    ) -> "SelectivityCatalog":
        """A new catalog reflecting ``delta``, rebuilt incrementally.

        ``graph`` must be the **post-delta** graph (apply the delta with
        :meth:`GraphDelta.apply` first); ``delta`` is used only to decide
        which first-label subtrees to re-evaluate.  The catalog itself is
        immutable — a new instance is returned, byte-identical to
        :meth:`from_graph` on the post-delta graph.

        The incremental path (only affected subtree slices recomputed, via
        :func:`~repro.paths.enumeration.update_selectivity_vector`) requires
        a dense catalog over an unchanged label alphabet.  When the delta
        moves the alphabet (a label appeared or lost its last edge — the
        canonical index space itself changes) or the catalog is sparse
        (pruned mappings carry an explicit-path mask a patch cannot
        maintain), this falls back to a full cold rebuild.  ``affected``
        optionally forwards a precomputed
        :func:`~repro.graph.delta.affected_first_labels` result (see
        :func:`~repro.paths.enumeration.update_selectivity_vector`).
        """
        if self.delta_requires_full_rebuild(graph):
            return SelectivityCatalog.from_graph(
                graph,
                self._max_length,
                progress=progress,
                workers=workers,
                backend=backend,
            )
        vector = update_selectivity_vector(
            graph,
            self._max_length,
            self._frequencies,
            delta,
            labels=self._labels,
            progress=progress,
            workers=workers,
            backend=backend,
            affected=affected,
        )
        return SelectivityCatalog.from_frequencies(
            self._labels,
            self._max_length,
            vector,
            graph_name=graph.name or self._graph_name,
            copy=False,
        )

    @classmethod
    def from_frequencies(
        cls,
        labels: Sequence[str],
        max_length: int,
        frequencies: np.ndarray,
        *,
        graph_name: str = "",
        copy: bool = True,
    ) -> "SelectivityCatalog":
        """Build from a dense canonical-order frequency vector.

        ``copy=True`` (the default) leaves the caller's array untouched;
        ``copy=False`` adopts it zero-copy, after which the catalog marks it
        read-only (builders that hand over a freshly allocated vector use
        this).
        """
        if copy:
            frequencies = np.array(frequencies, dtype=np.int64)
        return cls(labels, max_length, frequencies, graph_name=graph_name)

    # ------------------------------------------------------------------
    # core accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """The label alphabet ``L`` (sorted)."""
        return self._labels

    @property
    def max_length(self) -> int:
        """The maximum path length ``k``."""
        return self._max_length

    @property
    def graph_name(self) -> str:
        """Name of the graph the catalog was built from (may be empty)."""
        return self._graph_name

    @property
    def domain_size(self) -> int:
        """``|Lk|`` — the size of the full label-path domain."""
        return self._domain_size

    @property
    def is_dense(self) -> bool:
        """Whether every domain path has an explicitly stored selectivity.

        Sparse catalogs (built from a pruned mapping) carry an explicit-path
        mask; dense ones store the whole domain and serialise without it.
        """
        return self._explicit is None

    def frequency_vector(self) -> np.ndarray:
        """The read-only ``int64`` frequency vector in canonical domain order.

        Position ``i`` is ``f`` of the ``i``-th path of
        :func:`~repro.paths.enumeration.enumerate_label_paths` over the
        catalog's alphabet; paths without an explicitly stored value read 0.
        This is the array the histogram layer consumes directly.
        """
        return self._frequencies

    def _domain_index(self, path: PathLike) -> int:
        """Canonical index of ``path``, validating alphabet and length.

        Same arithmetic as :func:`~repro.paths.index.path_to_domain_index`,
        inlined over the catalog's precomputed rank map and block offsets
        (this sits on the per-query hot path of ``selectivity``).
        """
        label_path = as_label_path(path)
        length = label_path.length
        if length > self._max_length:
            raise PathError(
                f"path {label_path} longer than catalog max_length={self._max_length}"
            )
        rank_of = self._rank_of
        base = len(self._labels)
        value = 0
        for label in label_path:
            digit = rank_of.get(label)
            if digit is None:
                raise UnknownLabelError(label)
            value = value * base + digit
        return self._block_starts[length - 1] + value

    def selectivity(self, path: PathLike) -> int:
        """The true selectivity ``f(ℓ)`` (0 for paths absent from the graph).

        Raises for paths outside the domain (unknown labels or too long) so
        that experiment code cannot silently query a mismatched catalog.
        """
        return int(self._frequencies[self._domain_index(path)])

    def label_selectivity(self, label: str) -> int:
        """Selectivity of the length-1 path for ``label``."""
        return self.selectivity(LabelPath.single(label))

    def label_selectivities(self) -> dict[str, int]:
        """Selectivity of every single label, keyed by label."""
        return {label: self.label_selectivity(label) for label in self._labels}

    def paths(self) -> Iterator[LabelPath]:
        """Iterate over the paths with an explicitly stored selectivity.

        Dense catalogs (built from a graph or a frequency vector) store the
        whole domain; sparse ones (built from a pruned mapping) yield only
        the mapped paths.  Iteration is in canonical domain order.
        """
        if self._explicit is None:
            return enumerate_label_paths(self._labels, self._max_length)
        return (
            domain_index_to_path(int(index), self._labels)
            for index in np.nonzero(self._explicit)[0]
        )

    def items(self) -> Iterator[tuple[LabelPath, int]]:
        """Iterate over ``(path, selectivity)`` for explicitly stored paths."""
        frequencies = self._frequencies
        if self._explicit is None:
            return (
                (path, int(frequencies[index]))
                for index, path in enumerate(
                    enumerate_label_paths(self._labels, self._max_length)
                )
            )
        return (
            (domain_index_to_path(int(index), self._labels), int(frequencies[index]))
            for index in np.nonzero(self._explicit)[0]
        )

    def nonzero_paths(self) -> list[LabelPath]:
        """All stored paths with a strictly positive selectivity."""
        return [
            domain_index_to_path(int(index), self._labels)
            for index in np.nonzero(self._frequencies)[0]
        ]

    def total_selectivity(self) -> int:
        """Sum of ``f(ℓ)`` over all stored paths (cached after first call)."""
        if self._total is None:
            self._total = int(self._frequencies.sum())
        return self._total

    def max_selectivity(self) -> int:
        """The largest stored selectivity (0 for an empty catalog; cached)."""
        if self._max is None:
            self._max = int(self._frequencies.max(initial=0))
        return self._max

    def restrict(self, max_length: int) -> "SelectivityCatalog":
        """A new catalog containing only paths of length ≤ ``max_length``.

        The canonical order is length-major, so restriction is a prefix slice
        of the frequency vector.
        """
        if max_length > self._max_length:
            raise PathError(
                f"cannot restrict to max_length={max_length} > {self._max_length}"
            )
        size = domain_size(len(self._labels), max_length)
        restricted = SelectivityCatalog(
            self._labels,
            max_length,
            self._frequencies[:size].copy(),
            graph_name=self._graph_name,
        )
        if self._explicit is not None:
            mask = self._explicit[:size].copy()
            restricted._explicit = None if bool(mask.all()) else mask
        return restricted

    def __len__(self) -> int:
        if self._explicit is None:
            return self._domain_size
        return int(self._explicit.sum())

    def __contains__(self, path: object) -> bool:
        if not isinstance(path, (str, LabelPath, tuple)):
            return False
        try:
            index = self._domain_index(path)  # type: ignore[arg-type]
        except (PathError, UnknownLabelError):
            return False
        return self._explicit is None or bool(self._explicit[index])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<SelectivityCatalog graph={self._graph_name!r} |L|={len(self._labels)} "
            f"k={self._max_length} stored={len(self)}>"
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable representation of the catalog."""
        return {
            "graph_name": self._graph_name,
            "labels": list(self._labels),
            "max_length": self._max_length,
            "selectivities": {str(path): value for path, value in self.items()},
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "SelectivityCatalog":
        """Rebuild a catalog from :meth:`to_dict` output."""
        try:
            labels = [str(label) for label in document["labels"]]  # type: ignore[index]
            max_length = int(document["max_length"])  # type: ignore[arg-type]
            raw = document["selectivities"]  # type: ignore[index]
        except (KeyError, TypeError, ValueError) as exc:
            raise PathError(f"invalid catalog document: {exc}") from exc
        selectivities = {
            LabelPath.parse(path): int(value) for path, value in dict(raw).items()
        }
        return cls(
            labels,
            max_length,
            selectivities,
            graph_name=str(document.get("graph_name", "")),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the catalog to ``path`` as JSON (the interoperable form).

        :meth:`save_npz` is the compact binary alternative the engine's
        artifact cache uses.
        """
        with open(Path(path), "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")

    def save_npz(self, path: Union[str, Path]) -> None:
        """Write the catalog to ``path`` as a compressed ``.npz`` archive.

        The archive stores the dense frequency vector plus metadata
        (``labels``, ``max_length``, ``graph_name``, ``format_version`` =
        :data:`CATALOG_NPZ_VERSION`, and the explicit-path mask when the
        catalog is sparse).  Typically a small fraction of the JSON size.
        """
        arrays: dict[str, np.ndarray] = {
            "format_version": np.asarray(CATALOG_NPZ_VERSION, dtype=np.int64),
            "labels": np.asarray(self._labels, dtype=np.str_),
            "max_length": np.asarray(self._max_length, dtype=np.int64),
            "graph_name": np.asarray(self._graph_name, dtype=np.str_),
            "frequencies": self._frequencies,
        }
        if self._explicit is not None:
            arrays["explicit"] = self._explicit
        with open(Path(path), "wb") as handle:
            np.savez_compressed(handle, **arrays)

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "SelectivityCatalog":
        """Read a catalog previously written by :meth:`save_npz`."""
        with np.load(Path(path), allow_pickle=False) as archive:
            try:
                version = int(archive["format_version"])
                if version != CATALOG_NPZ_VERSION:
                    raise PathError(
                        f"unsupported catalog npz format version {version} "
                        f"(expected {CATALOG_NPZ_VERSION})"
                    )
                labels = [str(label) for label in archive["labels"]]
                max_length = int(archive["max_length"])
                graph_name = str(archive["graph_name"])
                frequencies = np.asarray(archive["frequencies"], dtype=np.int64)
                explicit = (
                    np.asarray(archive["explicit"], dtype=bool)
                    if "explicit" in archive.files
                    else None
                )
            except KeyError as exc:
                raise PathError(f"invalid catalog npz archive: missing {exc}") from exc
        catalog = cls(labels, max_length, frequencies, graph_name=graph_name)
        if explicit is not None:
            if explicit.shape != catalog._frequencies.shape:
                raise PathError("invalid catalog npz archive: bad explicit mask")
            catalog._explicit = None if bool(explicit.all()) else explicit
        return catalog

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SelectivityCatalog":
        """Read a catalog written by :meth:`save` or :meth:`save_npz`.

        The format is sniffed from the file content (``.npz`` archives are
        zip files), so old JSON catalogs keep loading transparently.
        """
        target = Path(path)
        with open(target, "rb") as handle:
            magic = handle.read(2)
        if magic == b"PK":
            return cls.load_npz(target)
        with open(target, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        return cls.from_dict(document)
