"""The path-selectivity catalog.

A :class:`SelectivityCatalog` stores the true selectivity ``f(ℓ)`` of every
label path in ``Lk`` for one graph.  It is the ground-truth distribution that

* orderings consult for cardinality ranking,
* histograms are built from, and
* the evaluation harness compares estimates against.

Internally the catalog supports two **storage modes** over the same logical
content (every path of ``Lk`` has a selectivity; most are zero on real
graphs):

* ``dense`` — one index-aligned ``int64`` NumPy frequency vector in the
  canonical numerical-alphabetical domain order (position ``i`` holds ``f``
  of the ``i``-th path of
  :func:`~repro.paths.enumeration.enumerate_label_paths`; the bijection is
  the base-``|L|`` arithmetic of :mod:`repro.paths.index`).  O(|Lk|) memory.
* ``sparse`` — a CSR-style pair of sorted ``int64`` nonzero domain indices
  and aligned counts.  O(nnz) memory; point lookups are one
  ``searchsorted``.  This is what lets large-alphabet/length scenarios
  (``|L|=20, k=6`` has a 64M-entry dense domain) build and serve at all.

``storage="auto"`` (the default of :meth:`SelectivityCatalog.from_graph`)
picks sparse when the domain is large and mostly zero
(:data:`SPARSE_AUTO_MIN_DOMAIN` / :data:`SPARSE_DENSITY_CEILING`), dense
otherwise.  Both modes answer every query identically — storage is an
implementation detail the rest of the library never has to branch on, except
where it *wants* the nonzero stream (the histogram builders, the artifact
cache's memory accounting).

Catalogs are expensive to build for large ``k`` (they require evaluating the
whole domain), so they can be persisted and are treated as immutable once
built.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.exceptions import PathError, UnknownLabelError
from repro.graph.delta import GraphDelta
from repro.graph.digraph import LabeledDiGraph
from repro.paths.enumeration import (
    compute_selectivity_nonzeros,
    compute_selectivity_vector,
    domain_size,
    enumerate_label_paths,
    update_selectivity_nonzeros,
    update_selectivity_vector,
)
from repro.paths.index import (
    domain_indices_to_paths,
    paths_to_domain_indices,
)
from repro.paths.label_path import LabelPath, as_label_path

__all__ = [
    "SelectivityCatalog",
    "CATALOG_NPZ_VERSION",
    "CATALOG_STORAGE_MODES",
    "SPARSE_DENSITY_CEILING",
    "SPARSE_AUTO_MIN_DOMAIN",
]

PathLike = Union[str, LabelPath]

#: Version stamp written into the ``.npz`` catalog format.  Version 2 added
#: the sparse (``nz_indices`` / ``nz_values``) layout; version-1 archives
#: (always dense) are still read.
CATALOG_NPZ_VERSION = 2

#: The storage modes a catalog can be asked for.
CATALOG_STORAGE_MODES = ("auto", "dense", "sparse")

#: ``storage="auto"`` picks sparse at or below this nonzero density ...
SPARSE_DENSITY_CEILING = 0.25

#: ... but only for domains at least this large (below it a dense vector is
#: a few KB and the searchsorted indirection buys nothing).
SPARSE_AUTO_MIN_DOMAIN = 4096


def _resolve_auto_storage(domain: int, nnz: int) -> str:
    """The storage mode ``"auto"`` resolves to for a known nonzero count."""
    if domain >= SPARSE_AUTO_MIN_DOMAIN and nnz <= domain * SPARSE_DENSITY_CEILING:
        return "sparse"
    return "dense"


class SelectivityCatalog:
    """True selectivities of every label path up to length ``k`` on one graph.

    Parameters
    ----------
    labels:
        The label alphabet ``L`` (sorted internally).
    max_length:
        The maximum path length ``k``.
    selectivities:
        One of three forms:

        * a mapping from paths in ``Lk`` (or a subset — missing paths are
          treated as selectivity 0) to their true selectivity;
        * a dense ``int64`` frequency vector of ``|Lk|`` entries in canonical
          domain order (*adopted*: the catalog takes ownership and marks it
          read-only — use :meth:`from_frequencies`, which copies by default,
          when the caller keeps using the array);
        * an ``(indices, values)`` pair of aligned 1-D arrays — sorted
          canonical domain indices of the nonzero paths and their counts, as
          :func:`~repro.paths.enumeration.compute_selectivity_nonzeros`
          emits them.
    graph_name:
        Optional provenance string.
    storage:
        ``"dense"``, ``"sparse"`` or ``"auto"``.  ``"auto"`` resolves by the
        density heuristic for array and ``(indices, values)`` input; mapping
        input always resolves dense (the explicit-path bookkeeping of pruned
        mappings only exists in dense form).
    """

    def __init__(
        self,
        labels: Sequence[str],
        max_length: int,
        selectivities: Union[
            Mapping[PathLike, int], np.ndarray, tuple[np.ndarray, np.ndarray]
        ],
        *,
        graph_name: str = "",
        storage: str = "auto",
    ) -> None:
        if max_length < 1:
            raise PathError("max_length must be >= 1")
        if not labels:
            raise PathError("the label alphabet must not be empty")
        if storage not in CATALOG_STORAGE_MODES:
            raise PathError(
                f"unknown storage mode {storage!r}; expected one of "
                f"{CATALOG_STORAGE_MODES}"
            )
        self._labels = tuple(sorted(set(labels)))
        # Hoisted ranking state so per-query index arithmetic is one dict
        # lookup per label, not a rebuilt rank map per call.
        self._rank_of = {label: digit for digit, label in enumerate(self._labels)}
        base = len(self._labels)
        self._block_starts = [0]
        for length in range(1, max_length):
            self._block_starts.append(self._block_starts[-1] + base**length)
        self._max_length = max_length
        self._graph_name = graph_name
        self._domain_size = domain_size(len(self._labels), max_length)
        self._total: Optional[int] = None
        self._max: Optional[int] = None
        self._frequencies: Optional[np.ndarray] = None
        self._nz_indices: Optional[np.ndarray] = None
        self._nz_values: Optional[np.ndarray] = None
        self._explicit: Optional[np.ndarray] = None
        if isinstance(selectivities, tuple):
            self._init_from_nonzeros(*selectivities, storage=storage)
        elif isinstance(selectivities, np.ndarray):
            self._init_from_vector(selectivities, storage=storage)
        else:
            self._init_from_mapping(selectivities, storage=storage)

    # ------------------------------------------------------------------
    # construction branches
    # ------------------------------------------------------------------
    def _init_from_vector(self, frequencies: np.ndarray, *, storage: str) -> None:
        if frequencies.shape != (self._domain_size,):
            raise PathError(
                f"frequency vector has shape {frequencies.shape}, expected "
                f"({self._domain_size},) for |L|={len(self._labels)}, "
                f"k={self._max_length}"
            )
        if (
            isinstance(frequencies, np.memmap)
            and frequencies.dtype == np.int64
            and frequencies.flags["C_CONTIGUOUS"]
        ):
            # A memory-mapped vector is adopted as-is: converting would
            # materialise it (or silently drop the memmap type), and the
            # negative-value scan would fault in every page of an
            # artifact this library wrote and validated itself.  It also
            # stays dense regardless of ``storage`` — mmap *is* the
            # at-scale story for dense vectors, and its pages are already
            # reclaimable file cache.
            self._frequencies = frequencies
            self._frequencies.setflags(write=False)
            self._storage = "dense"
            return
        frequencies = np.ascontiguousarray(frequencies, dtype=np.int64)
        if frequencies.size and int(frequencies.min()) < 0:
            position = int(np.argmin(frequencies))
            raise PathError(
                f"negative selectivity at domain index {position}: "
                f"{int(frequencies[position])}"
            )
        if storage == "auto":
            storage = _resolve_auto_storage(
                self._domain_size, int(np.count_nonzero(frequencies))
            )
        if storage == "sparse":
            indices = np.nonzero(frequencies)[0]
            self._adopt_nonzeros(indices, frequencies[indices])
            return
        self._frequencies = frequencies
        self._frequencies.setflags(write=False)
        self._storage = "dense"

    def _init_from_nonzeros(
        self, indices: np.ndarray, values: np.ndarray, *, storage: str
    ) -> None:
        if (
            storage != "dense"
            and isinstance(indices, np.memmap)
            and isinstance(values, np.memmap)
            and indices.dtype == np.int64
            and values.dtype == np.int64
            and indices.ndim == 1
            and indices.shape == values.shape
            and indices.flags["C_CONTIGUOUS"]
            and values.flags["C_CONTIGUOUS"]
        ):
            # Memory-mapped nonzero pairs are adopted as-is, mirroring the
            # dense memmap branch of ``_init_from_vector``: converting would
            # materialise (or silently strip) the memmap, and the
            # monotonicity/range scans would fault in every page of a
            # sidecar this library wrote and validated itself.
            self._nz_indices = indices
            self._nz_values = values
            self._nz_indices.setflags(write=False)
            self._nz_values.setflags(write=False)
            self._storage = "sparse"
            return
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.int64)
        if indices.ndim != 1 or indices.shape != values.shape:
            raise PathError(
                "sparse selectivities must be aligned one-dimensional "
                "(indices, values) arrays"
            )
        if values.size and int(values.min()) < 0:
            position = int(np.argmin(values))
            raise PathError(
                f"negative selectivity at domain index "
                f"{int(indices[position])}: {int(values[position])}"
            )
        if values.size and int(values.min()) == 0:
            # Explicit zeros carry no information in either storage mode;
            # dropping them here keeps the sparse invariants simple.
            mask = values > 0
            indices, values = indices[mask], values[mask]
        if indices.size:
            if int(indices.min()) < 0 or int(indices.max()) >= self._domain_size:
                raise PathError(
                    f"sparse index out of range [0, {self._domain_size}) for "
                    f"|L|={len(self._labels)}, k={self._max_length}"
                )
            if not bool(np.all(np.diff(indices) > 0)):
                raise PathError(
                    "sparse indices must be strictly increasing (sorted, "
                    "no duplicates)"
                )
        if storage == "auto":
            storage = _resolve_auto_storage(self._domain_size, int(indices.size))
        if storage == "dense":
            frequencies = np.zeros(self._domain_size, dtype=np.int64)
            frequencies[indices] = values
            self._frequencies = frequencies
            self._frequencies.setflags(write=False)
            self._storage = "dense"
            return
        self._adopt_nonzeros(indices, values)

    def _adopt_nonzeros(self, indices: np.ndarray, values: np.ndarray) -> None:
        self._nz_indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._nz_values = np.ascontiguousarray(values, dtype=np.int64)
        self._nz_indices.setflags(write=False)
        self._nz_values.setflags(write=False)
        self._storage = "sparse"

    def _init_from_mapping(
        self, selectivities: Mapping[PathLike, int], *, storage: str
    ) -> None:
        paths = list(selectivities.keys())
        values = (
            np.fromiter(
                (int(selectivities[path]) for path in paths),
                dtype=np.int64,
                count=len(paths),
            )
            if paths
            else np.empty(0, dtype=np.int64)
        )
        indices = (
            paths_to_domain_indices(paths, self._labels, max_length=self._max_length)
            if paths
            else np.empty(0, dtype=np.int64)
        )
        if values.size and int(values.min()) < 0:
            position = int(np.argmin(values))
            raise PathError(
                f"negative selectivity for {as_label_path(paths[position])}: "
                f"{int(values[position])}"
            )
        # One sort finds duplicate domain indices (a str key and a LabelPath
        # key can spell the same path); detecting them beats the old
        # last-write-wins scatter, which silently kept an arbitrary value.
        order = np.argsort(indices, kind="stable")
        sorted_indices = indices[order]
        duplicate = np.nonzero(np.diff(sorted_indices) == 0)[0]
        if duplicate.size:
            position = int(order[int(duplicate[0]) + 1])
            raise PathError(
                f"duplicate path in catalog mapping: "
                f"{as_label_path(paths[position])}"
            )
        if storage in ("auto", "dense"):
            # Mappings keep the legacy dense layout: a partial mapping
            # carries an explicit-path mask, which only exists densely.
            frequencies = np.zeros(self._domain_size, dtype=np.int64)
            frequencies[indices] = values
            explicit = np.zeros(self._domain_size, dtype=bool)
            explicit[indices] = True
            self._frequencies = frequencies
            self._frequencies.setflags(write=False)
            # A mapping that covers the whole domain is just a dense catalog.
            self._explicit = None if bool(explicit.all()) else explicit
            self._storage = "dense"
            return
        sorted_values = values[order]
        mask = sorted_values > 0
        self._adopt_nonzeros(sorted_indices[mask], sorted_values[mask])

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: LabeledDiGraph,
        max_length: int,
        *,
        labels: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[int], None]] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        storage: str = "auto",
    ) -> "SelectivityCatalog":
        """Build the catalog by exact evaluation of every path on ``graph``.

        ``storage="dense"`` runs the columnar builder
        (:func:`~repro.paths.enumeration.compute_selectivity_vector`):
        counts land directly in the O(|Lk|) frequency vector.  ``"sparse"``
        and ``"auto"`` run the sparse builder
        (:func:`~repro.paths.enumeration.compute_selectivity_nonzeros`),
        which touches O(nnz) memory and never materialises zero subtrees;
        ``"auto"`` then keeps the sparse form when the domain is large and
        mostly zero, and scatters into a dense vector otherwise.  Results
        are identical across storage modes and across the ``"serial"`` /
        ``"thread"`` / ``"process"`` / ``"matrix"`` backends; ``"matrix"``
        builds whole levels as stacked sparse matrix-chain products and is
        the fastest way to construct large sparse catalogs.
        """
        if storage not in CATALOG_STORAGE_MODES:
            raise PathError(
                f"unknown storage mode {storage!r}; expected one of "
                f"{CATALOG_STORAGE_MODES}"
            )
        alphabet = sorted(labels) if labels is not None else graph.labels()
        name = graph.name or "unnamed"
        if storage == "dense":
            vector = compute_selectivity_vector(
                graph,
                max_length,
                labels=alphabet,
                progress=progress,
                backend=backend,
                workers=workers,
            )
            return cls.from_frequencies(
                alphabet, max_length, vector, graph_name=name, copy=False
            )
        indices, counts = compute_selectivity_nonzeros(
            graph,
            max_length,
            labels=alphabet,
            progress=progress,
            backend=backend,
            workers=workers,
        )
        return cls(
            alphabet,
            max_length,
            (indices, counts),
            graph_name=name,
            storage=storage,
        )

    def delta_requires_full_rebuild(self, graph: LabeledDiGraph) -> bool:
        """Whether :meth:`apply_delta` must fall back to a full cold rebuild.

        True when the post-delta ``graph``'s label alphabet no longer
        matches this catalog's (the canonical index space itself moved) or
        the catalog was built from a *pruned mapping* (its explicit-path
        mask cannot be patched).  Sparse-storage catalogs patch fine — only
        the affected subtree index ranges are recomputed, in sparse form.
        The engine consults the same predicate for its stats, so what is
        reported always matches what ran.
        """
        return (
            tuple(sorted(graph.labels())) != self._labels
            or self._explicit is not None
        )

    def apply_delta(
        self,
        graph: LabeledDiGraph,
        delta: GraphDelta,
        *,
        progress: Optional[Callable[[int], None]] = None,
        workers: Optional[int] = None,
        backend: Optional[str] = None,
        affected: Optional[Sequence[str]] = None,
    ) -> "SelectivityCatalog":
        """A new catalog reflecting ``delta``, rebuilt incrementally.

        ``graph`` must be the **post-delta** graph (apply the delta with
        :meth:`GraphDelta.apply` first); ``delta`` is used only to decide
        which first-label subtrees to re-evaluate.  The catalog itself is
        immutable — a new instance is returned, equal to :meth:`from_graph`
        on the post-delta graph, in the same storage mode as this catalog
        (dense catalogs patch the frequency vector through
        :func:`~repro.paths.enumeration.update_selectivity_vector`, sparse
        ones splice the affected subtree index ranges through
        :func:`~repro.paths.enumeration.update_selectivity_nonzeros`).

        The incremental path requires an unchanged label alphabet and no
        explicit-path mask; otherwise this falls back to a full cold
        rebuild (see :meth:`delta_requires_full_rebuild`).  ``affected``
        optionally forwards a precomputed
        :func:`~repro.graph.delta.affected_first_labels` result.
        """
        if self.delta_requires_full_rebuild(graph):
            return SelectivityCatalog.from_graph(
                graph,
                self._max_length,
                progress=progress,
                workers=workers,
                backend=backend,
                storage=self._storage,
            )
        name = graph.name or self._graph_name
        if self._storage == "sparse":
            indices, values = update_selectivity_nonzeros(
                graph,
                self._max_length,
                self._nz_indices,
                self._nz_values,
                delta,
                labels=self._labels,
                progress=progress,
                workers=workers,
                backend=backend,
                affected=affected,
            )
            return SelectivityCatalog(
                self._labels,
                self._max_length,
                (indices, values),
                graph_name=name,
                storage="sparse",
            )
        vector = update_selectivity_vector(
            graph,
            self._max_length,
            self._frequencies,
            delta,
            labels=self._labels,
            progress=progress,
            workers=workers,
            backend=backend,
            affected=affected,
        )
        return SelectivityCatalog.from_frequencies(
            self._labels,
            self._max_length,
            vector,
            graph_name=name,
            copy=False,
        )

    @classmethod
    def from_frequencies(
        cls,
        labels: Sequence[str],
        max_length: int,
        frequencies: np.ndarray,
        *,
        graph_name: str = "",
        copy: bool = True,
        storage: str = "dense",
    ) -> "SelectivityCatalog":
        """Build from a dense canonical-order frequency vector.

        ``copy=True`` (the default) leaves the caller's array untouched;
        ``copy=False`` adopts it zero-copy, after which the catalog marks it
        read-only (builders that hand over a freshly allocated vector use
        this).  ``storage`` defaults to ``"dense"`` — the input is already
        the dense representation — but ``"sparse"``/``"auto"`` convert.
        """
        if copy:
            frequencies = np.array(frequencies, dtype=np.int64)
        return cls(
            labels, max_length, frequencies, graph_name=graph_name, storage=storage
        )

    @classmethod
    def from_nonzeros(
        cls,
        labels: Sequence[str],
        max_length: int,
        indices: np.ndarray,
        values: np.ndarray,
        *,
        graph_name: str = "",
        copy: bool = True,
        storage: str = "sparse",
    ) -> "SelectivityCatalog":
        """Build from aligned sorted (canonical index, count) nonzero arrays.

        The sparse counterpart of :meth:`from_frequencies`.  ``copy=False``
        adopts the arrays zero-copy (they are marked read-only).
        """
        if copy:
            indices = np.array(indices, dtype=np.int64)
            values = np.array(values, dtype=np.int64)
        return cls(
            labels,
            max_length,
            (indices, values),
            graph_name=graph_name,
            storage=storage,
        )

    def to_dense(self) -> "SelectivityCatalog":
        """This catalog in dense storage (``self`` when already dense)."""
        if self._storage == "dense":
            return self
        return SelectivityCatalog.from_nonzeros(
            self._labels,
            self._max_length,
            self._nz_indices,
            self._nz_values,
            graph_name=self._graph_name,
            copy=False,
            storage="dense",
        )

    def to_sparse(self) -> "SelectivityCatalog":
        """This catalog in sparse storage (``self`` when already sparse).

        Catalogs built from a pruned mapping refuse the conversion: their
        explicit-path mask has no sparse representation.
        """
        if self._storage == "sparse":
            return self
        if self._explicit is not None:
            raise PathError(
                "a pruned-mapping catalog (explicit-path mask) cannot be "
                "converted to sparse storage"
            )
        indices = np.nonzero(self._frequencies)[0]
        return SelectivityCatalog.from_nonzeros(
            self._labels,
            self._max_length,
            indices,
            self._frequencies[indices],
            graph_name=self._graph_name,
            copy=False,
            storage="sparse",
        )

    # ------------------------------------------------------------------
    # core accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """The label alphabet ``L`` (sorted)."""
        return self._labels

    @property
    def max_length(self) -> int:
        """The maximum path length ``k``."""
        return self._max_length

    @property
    def graph_name(self) -> str:
        """Name of the graph the catalog was built from (may be empty)."""
        return self._graph_name

    @property
    def domain_size(self) -> int:
        """``|Lk|`` — the size of the full label-path domain."""
        return self._domain_size

    @property
    def storage(self) -> str:
        """The storage mode actually in use: ``"dense"`` or ``"sparse"``."""
        return self._storage

    @property
    def mmap_backed(self) -> bool:
        """Whether the stored representation lives in memory-mapped files.

        ``True`` when the dense frequency vector, or both sparse nonzero
        arrays, are :class:`numpy.memmap` instances — the state
        ``ArtifactCache.load_catalog(mmap=True)`` produces from an
        uncompressed sidecar.  Memmap-backed catalogs charge 0 in
        :meth:`memory_bytes` and share pages across forked workers.
        """
        if self._storage == "sparse":
            return isinstance(self._nz_indices, np.memmap) and isinstance(
                self._nz_values, np.memmap
            )
        return isinstance(self._frequencies, np.memmap)

    @property
    def is_dense(self) -> bool:
        """Whether every domain path has a stored (possibly implicit) value.

        ``True`` for dense-storage catalogs without an explicit-path mask
        *and* for sparse-storage catalogs (their implicit entries are real
        zeros, not unknowns); ``False`` only for catalogs built from a
        pruned mapping.  See :attr:`storage` for the representation.
        """
        return self._explicit is None

    @property
    def nnz(self) -> int:
        """Number of paths with a strictly positive selectivity."""
        if self._storage == "sparse":
            return int(self._nz_indices.size)
        return int(np.count_nonzero(self._frequencies))

    @property
    def density(self) -> float:
        """``nnz / |Lk|`` — the fraction of the domain that is nonzero."""
        return self.nnz / self._domain_size

    def memory_bytes(self) -> int:
        """Resident bytes of the stored representation.

        O(nnz) for sparse storage (indices + counts), O(|Lk|) for dense —
        except memory-mapped arrays, which charge 0 (their pages are
        reclaimable file cache, shared across forked workers).  This is the
        number the serving layer's byte-budget eviction charges per catalog.
        """
        if self._storage == "sparse":
            return sum(
                int(array.nbytes)
                for array in (self._nz_indices, self._nz_values)
                if not isinstance(array, np.memmap)
            )
        if isinstance(self._frequencies, np.memmap):
            return 0
        total = int(self._frequencies.nbytes)
        if self._explicit is not None:
            total += int(self._explicit.nbytes)
        return total

    def frequency_vector(self) -> np.ndarray:
        """The ``int64`` frequency vector in canonical domain order.

        Position ``i`` is ``f`` of the ``i``-th path of
        :func:`~repro.paths.enumeration.enumerate_label_paths` over the
        catalog's alphabet; paths without a stored value read 0.  Dense
        catalogs return their (read-only) backing array; **sparse catalogs
        materialise a fresh O(|Lk|) array on every call** — hot paths should
        use :meth:`nonzero_arrays` instead.
        """
        if self._storage == "sparse":
            vector = np.zeros(self._domain_size, dtype=np.int64)
            vector[self._nz_indices] = self._nz_values
            return vector
        return self._frequencies

    def nonzero_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Aligned ``(indices, values)`` arrays of the nonzero paths.

        Sorted canonical domain indices and strictly positive counts —
        O(nnz), read-only views for sparse catalogs, computed on the fly for
        dense ones.  This is the stream the sparse-aware histogram builders
        consume.
        """
        if self._storage == "sparse":
            return self._nz_indices, self._nz_values
        indices = np.nonzero(self._frequencies)[0]
        return indices, self._frequencies[indices]

    def _domain_index(self, path: PathLike) -> int:
        """Canonical index of ``path``, validating alphabet and length.

        Same arithmetic as :func:`~repro.paths.index.path_to_domain_index`,
        inlined over the catalog's precomputed rank map and block offsets
        (this sits on the per-query hot path of ``selectivity``).
        """
        label_path = as_label_path(path)
        length = label_path.length
        if length > self._max_length:
            raise PathError(
                f"path {label_path} longer than catalog max_length={self._max_length}"
            )
        rank_of = self._rank_of
        base = len(self._labels)
        value = 0
        for label in label_path:
            digit = rank_of.get(label)
            if digit is None:
                raise UnknownLabelError(label)
            value = value * base + digit
        return self._block_starts[length - 1] + value

    def _value_at(self, index: int) -> int:
        """The stored selectivity at a canonical domain index."""
        if self._storage == "sparse":
            position = int(np.searchsorted(self._nz_indices, index))
            if (
                position < self._nz_indices.size
                and int(self._nz_indices[position]) == index
            ):
                return int(self._nz_values[position])
            return 0
        return int(self._frequencies[index])

    def selectivity(self, path: PathLike) -> int:
        """The true selectivity ``f(ℓ)`` (0 for paths absent from the graph).

        Raises for paths outside the domain (unknown labels or too long) so
        that experiment code cannot silently query a mismatched catalog.
        """
        return self._value_at(self._domain_index(path))

    def selectivities_at(self, indices) -> np.ndarray:
        """Vectorised selectivities for a batch of canonical domain indices.

        One fancy-index for dense storage, one ``searchsorted`` for sparse.
        Out-of-range indices raise :class:`PathError`.
        """
        positions = np.ascontiguousarray(indices, dtype=np.int64)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        if int(positions.min()) < 0 or int(positions.max()) >= self._domain_size:
            raise PathError(
                f"domain index out of range [0, {self._domain_size}) for "
                f"|L|={len(self._labels)}, k={self._max_length}"
            )
        if self._storage == "dense":
            return self._frequencies[positions]
        if self._nz_indices.size == 0:
            return np.zeros(positions.size, dtype=np.int64)
        found = np.minimum(
            np.searchsorted(self._nz_indices, positions), self._nz_indices.size - 1
        )
        hit = self._nz_indices[found] == positions
        out = np.zeros(positions.size, dtype=np.int64)
        out[hit] = self._nz_values[found[hit]]
        return out

    def label_selectivity(self, label: str) -> int:
        """Selectivity of the length-1 path for ``label``."""
        return self.selectivity(LabelPath.single(label))

    def label_selectivities(self) -> dict[str, int]:
        """Selectivity of every single label, keyed by label."""
        return {label: self.label_selectivity(label) for label in self._labels}

    def paths(self) -> Iterator[LabelPath]:
        """Iterate over the paths with an explicitly stored selectivity.

        Catalogs covering the whole domain (from a graph or a frequency
        vector, in either storage mode) yield all of ``Lk``; pruned-mapping
        catalogs yield only the mapped paths.  Iteration is in canonical
        domain order.
        """
        if self._explicit is None:
            return enumerate_label_paths(self._labels, self._max_length)
        return iter(
            domain_indices_to_paths(
                np.nonzero(self._explicit)[0], self._labels, self._max_length
            )
        )

    def items(self) -> Iterator[tuple[LabelPath, int]]:
        """Iterate over ``(path, selectivity)`` for explicitly stored paths."""
        if self._explicit is not None:
            indices = np.nonzero(self._explicit)[0]
            frequencies = self._frequencies
            return (
                (path, int(frequencies[index]))
                for path, index in zip(
                    domain_indices_to_paths(
                        indices, self._labels, self._max_length
                    ),
                    indices,
                )
            )
        if self._storage == "dense":
            frequencies = self._frequencies
            return (
                (path, int(frequencies[index]))
                for index, path in enumerate(
                    enumerate_label_paths(self._labels, self._max_length)
                )
            )
        return self._sparse_items()

    def _sparse_items(self) -> Iterator[tuple[LabelPath, int]]:
        """Full-domain ``(path, value)`` walk merged against the nonzeros."""
        nz_indices = self._nz_indices
        nz_values = self._nz_values
        pointer = 0
        for index, path in enumerate(
            enumerate_label_paths(self._labels, self._max_length)
        ):
            if pointer < nz_indices.size and int(nz_indices[pointer]) == index:
                yield path, int(nz_values[pointer])
                pointer += 1
            else:
                yield path, 0

    def nonzero_paths(self) -> list[LabelPath]:
        """All stored paths with a strictly positive selectivity.

        Unranking is batched through
        :func:`~repro.paths.index.domain_indices_to_paths` (vectorised digit
        peeling) instead of one scalar conversion per path.
        """
        indices, _ = self.nonzero_arrays()
        return domain_indices_to_paths(indices, self._labels, self._max_length)

    def total_selectivity(self) -> int:
        """Sum of ``f(ℓ)`` over all stored paths (cached after first call)."""
        if self._total is None:
            if self._storage == "sparse":
                self._total = int(self._nz_values.sum())
            else:
                self._total = int(self._frequencies.sum())
        return self._total

    def max_selectivity(self) -> int:
        """The largest stored selectivity (0 for an empty catalog; cached)."""
        if self._max is None:
            if self._storage == "sparse":
                self._max = int(self._nz_values.max(initial=0))
            else:
                self._max = int(self._frequencies.max(initial=0))
        return self._max

    def restrict(self, max_length: int) -> "SelectivityCatalog":
        """A new catalog containing only paths of length ≤ ``max_length``.

        The canonical order is length-major, so restriction is a prefix
        slice of the frequency vector (dense) or a ``searchsorted`` cut of
        the nonzero arrays (sparse).  The storage mode is preserved.
        """
        if max_length > self._max_length:
            raise PathError(
                f"cannot restrict to max_length={max_length} > {self._max_length}"
            )
        size = domain_size(len(self._labels), max_length)
        if self._storage == "sparse":
            cut = int(np.searchsorted(self._nz_indices, size))
            return SelectivityCatalog.from_nonzeros(
                self._labels,
                max_length,
                self._nz_indices[:cut],
                self._nz_values[:cut],
                graph_name=self._graph_name,
                storage="sparse",
            )
        restricted = SelectivityCatalog(
            self._labels,
            max_length,
            self._frequencies[:size].copy(),
            graph_name=self._graph_name,
            storage="dense",
        )
        if self._explicit is not None:
            mask = self._explicit[:size].copy()
            restricted._explicit = None if bool(mask.all()) else mask
        return restricted

    def __len__(self) -> int:
        if self._explicit is None:
            return self._domain_size
        return int(self._explicit.sum())

    def __contains__(self, path: object) -> bool:
        if not isinstance(path, (str, LabelPath, tuple)):
            return False
        try:
            index = self._domain_index(path)  # type: ignore[arg-type]
        except (PathError, UnknownLabelError):
            return False
        return self._explicit is None or bool(self._explicit[index])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<SelectivityCatalog graph={self._graph_name!r} |L|={len(self._labels)} "
            f"k={self._max_length} stored={len(self)} storage={self._storage!r}>"
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable representation of the catalog."""
        return {
            "graph_name": self._graph_name,
            "labels": list(self._labels),
            "max_length": self._max_length,
            "selectivities": {str(path): value for path, value in self.items()},
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "SelectivityCatalog":
        """Rebuild a catalog from :meth:`to_dict` output."""
        try:
            labels = [str(label) for label in document["labels"]]  # type: ignore[index]
            max_length = int(document["max_length"])  # type: ignore[arg-type]
            raw = document["selectivities"]  # type: ignore[index]
        except (KeyError, TypeError, ValueError) as exc:
            raise PathError(f"invalid catalog document: {exc}") from exc
        selectivities = {
            LabelPath.parse(path): int(value) for path, value in dict(raw).items()
        }
        return cls(
            labels,
            max_length,
            selectivities,
            graph_name=str(document.get("graph_name", "")),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the catalog to ``path`` as JSON (the interoperable form).

        :meth:`save_npz` is the compact binary alternative the engine's
        artifact cache uses.
        """
        with open(Path(path), "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")

    def save_npz(self, path: Union[str, Path]) -> None:
        """Write the catalog to ``path`` as a compressed ``.npz`` archive.

        The archive stores metadata (``labels``, ``max_length``,
        ``graph_name``, ``format_version`` = :data:`CATALOG_NPZ_VERSION`)
        plus the representation: the dense ``frequencies`` vector (and the
        explicit-path mask when one exists) for dense storage, the aligned
        ``nz_indices`` / ``nz_values`` pair — O(nnz) on disk too — for
        sparse storage.
        """
        arrays: dict[str, np.ndarray] = {
            "format_version": np.asarray(CATALOG_NPZ_VERSION, dtype=np.int64),
            "labels": np.asarray(self._labels, dtype=np.str_),
            "max_length": np.asarray(self._max_length, dtype=np.int64),
            "graph_name": np.asarray(self._graph_name, dtype=np.str_),
        }
        if self._storage == "sparse":
            arrays["nz_indices"] = self._nz_indices
            arrays["nz_values"] = self._nz_values
        else:
            arrays["frequencies"] = self._frequencies
            if self._explicit is not None:
                arrays["explicit"] = self._explicit
        with open(Path(path), "wb") as handle:
            np.savez_compressed(handle, **arrays)

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "SelectivityCatalog":
        """Read a catalog previously written by :meth:`save_npz`.

        Both layouts of format version 2 (dense and sparse) and the legacy
        dense-only version 1 load transparently; the storage mode is
        whatever the archive carries.
        """
        with np.load(Path(path), allow_pickle=False) as archive:
            try:
                version = int(archive["format_version"])
                if version not in (1, CATALOG_NPZ_VERSION):
                    raise PathError(
                        f"unsupported catalog npz format version {version} "
                        f"(expected <= {CATALOG_NPZ_VERSION})"
                    )
                labels = [str(label) for label in archive["labels"]]
                max_length = int(archive["max_length"])
                graph_name = str(archive["graph_name"])
                if "nz_indices" in archive.files:
                    indices = np.asarray(archive["nz_indices"], dtype=np.int64)
                    values = np.asarray(archive["nz_values"], dtype=np.int64)
                    return cls(
                        labels,
                        max_length,
                        (indices, values),
                        graph_name=graph_name,
                        storage="sparse",
                    )
                frequencies = np.asarray(archive["frequencies"], dtype=np.int64)
                explicit = (
                    np.asarray(archive["explicit"], dtype=bool)
                    if "explicit" in archive.files
                    else None
                )
            except KeyError as exc:
                raise PathError(f"invalid catalog npz archive: missing {exc}") from exc
        catalog = cls(
            labels, max_length, frequencies, graph_name=graph_name, storage="dense"
        )
        if explicit is not None:
            if explicit.shape != catalog._frequencies.shape:
                raise PathError("invalid catalog npz archive: bad explicit mask")
            catalog._explicit = None if bool(explicit.all()) else explicit
        return catalog

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SelectivityCatalog":
        """Read a catalog written by :meth:`save` or :meth:`save_npz`.

        The format is sniffed from the file content (``.npz`` archives are
        zip files), so old JSON catalogs keep loading transparently.
        """
        target = Path(path)
        with open(target, "rb") as handle:
            magic = handle.read(2)
        if magic == b"PK":
            return cls.load_npz(target)
        with open(target, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        return cls.from_dict(document)
