"""The path-selectivity catalog.

A :class:`SelectivityCatalog` stores the true selectivity ``f(ℓ)`` of every
label path in ``Lk`` for one graph.  It is the ground-truth distribution that

* orderings consult for cardinality ranking,
* histograms are built from, and
* the evaluation harness compares estimates against.

Catalogs are expensive to build for large ``k`` (they require evaluating the
whole domain), so they can be serialised to / from JSON and are treated as
immutable once built.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, Mapping, Optional, Sequence, Union

from repro.exceptions import PathError, UnknownLabelError
from repro.graph.digraph import LabeledDiGraph
from repro.paths.enumeration import (
    compute_selectivities,
    compute_selectivities_parallel,
    domain_size,
)
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["SelectivityCatalog"]

PathLike = Union[str, LabelPath]


class SelectivityCatalog:
    """True selectivities of every label path up to length ``k`` on one graph.

    Parameters
    ----------
    labels:
        The label alphabet ``L`` (sorted internally).
    max_length:
        The maximum path length ``k``.
    selectivities:
        Mapping from every path in ``Lk`` (or a subset — missing paths are
        treated as selectivity 0) to its true selectivity.
    graph_name:
        Optional provenance string.
    """

    def __init__(
        self,
        labels: Sequence[str],
        max_length: int,
        selectivities: Mapping[LabelPath, int],
        *,
        graph_name: str = "",
    ) -> None:
        if max_length < 1:
            raise PathError("max_length must be >= 1")
        if not labels:
            raise PathError("the label alphabet must not be empty")
        self._labels = tuple(sorted(set(labels)))
        self._max_length = max_length
        self._graph_name = graph_name
        self._selectivities: dict[LabelPath, int] = {}
        label_set = set(self._labels)
        for path, value in selectivities.items():
            label_path = as_label_path(path)
            if label_path.length > max_length:
                raise PathError(
                    f"path {label_path} longer than max_length={max_length}"
                )
            for label in label_path:
                if label not in label_set:
                    raise UnknownLabelError(label)
            if value < 0:
                raise PathError(f"negative selectivity for {label_path}: {value}")
            self._selectivities[label_path] = int(value)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: LabeledDiGraph,
        max_length: int,
        *,
        labels: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[int], None]] = None,
        workers: Optional[int] = None,
    ) -> "SelectivityCatalog":
        """Build the catalog by exact evaluation of every path on ``graph``.

        ``workers`` > 1 distributes the first-label subtrees of the DFS over
        that many threads (see :func:`compute_selectivities_parallel`); the
        default ``None`` keeps the serial builder.  Results are identical.
        """
        alphabet = sorted(labels) if labels is not None else graph.labels()
        if workers is not None and workers > 1:
            selectivities = compute_selectivities_parallel(
                graph, max_length, labels=alphabet, workers=workers, progress=progress
            )
        else:
            selectivities = compute_selectivities(
                graph, max_length, labels=alphabet, progress=progress
            )
        return cls(
            alphabet, max_length, selectivities, graph_name=graph.name or "unnamed"
        )

    # ------------------------------------------------------------------
    # core accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """The label alphabet ``L`` (sorted)."""
        return self._labels

    @property
    def max_length(self) -> int:
        """The maximum path length ``k``."""
        return self._max_length

    @property
    def graph_name(self) -> str:
        """Name of the graph the catalog was built from (may be empty)."""
        return self._graph_name

    @property
    def domain_size(self) -> int:
        """``|Lk|`` — the size of the full label-path domain."""
        return domain_size(len(self._labels), self._max_length)

    def selectivity(self, path: PathLike) -> int:
        """The true selectivity ``f(ℓ)`` (0 for paths absent from the graph).

        Raises for paths outside the domain (unknown labels or too long) so
        that experiment code cannot silently query a mismatched catalog.
        """
        label_path = as_label_path(path)
        if label_path.length > self._max_length:
            raise PathError(
                f"path {label_path} longer than catalog max_length={self._max_length}"
            )
        for label in label_path:
            if label not in self._labels:
                raise UnknownLabelError(label)
        return self._selectivities.get(label_path, 0)

    def label_selectivity(self, label: str) -> int:
        """Selectivity of the length-1 path for ``label``."""
        return self.selectivity(LabelPath.single(label))

    def label_selectivities(self) -> dict[str, int]:
        """Selectivity of every single label, keyed by label."""
        return {label: self.label_selectivity(label) for label in self._labels}

    def paths(self) -> Iterator[LabelPath]:
        """Iterate over the paths with an explicitly stored selectivity."""
        return iter(self._selectivities)

    def items(self) -> Iterator[tuple[LabelPath, int]]:
        """Iterate over ``(path, selectivity)`` for explicitly stored paths."""
        return iter(self._selectivities.items())

    def nonzero_paths(self) -> list[LabelPath]:
        """All stored paths with a strictly positive selectivity."""
        return [path for path, value in self._selectivities.items() if value > 0]

    def total_selectivity(self) -> int:
        """Sum of ``f(ℓ)`` over all stored paths."""
        return sum(self._selectivities.values())

    def max_selectivity(self) -> int:
        """The largest stored selectivity (0 for an empty catalog)."""
        return max(self._selectivities.values(), default=0)

    def restrict(self, max_length: int) -> "SelectivityCatalog":
        """A new catalog containing only paths of length ≤ ``max_length``."""
        if max_length > self._max_length:
            raise PathError(
                f"cannot restrict to max_length={max_length} > {self._max_length}"
            )
        selected = {
            path: value
            for path, value in self._selectivities.items()
            if path.length <= max_length
        }
        return SelectivityCatalog(
            self._labels, max_length, selected, graph_name=self._graph_name
        )

    def __len__(self) -> int:
        return len(self._selectivities)

    def __contains__(self, path: object) -> bool:
        if isinstance(path, (str, LabelPath)):
            return as_label_path(path) in self._selectivities
        return False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<SelectivityCatalog graph={self._graph_name!r} |L|={len(self._labels)} "
            f"k={self._max_length} stored={len(self._selectivities)}>"
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable representation of the catalog."""
        return {
            "graph_name": self._graph_name,
            "labels": list(self._labels),
            "max_length": self._max_length,
            "selectivities": {str(path): value for path, value in self._selectivities.items()},
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "SelectivityCatalog":
        """Rebuild a catalog from :meth:`to_dict` output."""
        try:
            labels = [str(label) for label in document["labels"]]  # type: ignore[index]
            max_length = int(document["max_length"])  # type: ignore[arg-type]
            raw = document["selectivities"]  # type: ignore[index]
        except (KeyError, TypeError, ValueError) as exc:
            raise PathError(f"invalid catalog document: {exc}") from exc
        selectivities = {
            LabelPath.parse(path): int(value) for path, value in dict(raw).items()
        }
        return cls(
            labels,
            max_length,
            selectivities,
            graph_name=str(document.get("graph_name", "")),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the catalog to ``path`` as JSON."""
        with open(Path(path), "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SelectivityCatalog":
        """Read a catalog previously written by :meth:`save`."""
        with open(Path(path), "r", encoding="utf-8") as handle:
            document = json.load(handle)
        return cls.from_dict(document)
