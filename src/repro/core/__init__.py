"""The paper's primary contribution, gathered under one import.

``repro.core`` re-exports the objects a user needs to go from a graph to a
selectivity estimate with a domain-ordered histogram::

    from repro.core import (
        LabeledDiGraph, SelectivityCatalog, make_ordering,
        build_histogram, PathSelectivityEstimator,
    )

Everything here is also importable from its home subpackage; this module only
provides the curated "paper surface".
"""

from repro.estimation.errors import error_rate, mean_error_rate, q_error
from repro.estimation.estimator import ExactOracle, PathSelectivityEstimator
from repro.estimation.evaluation import SweepResult, run_sweep
from repro.graph.digraph import Edge, LabeledDiGraph
from repro.histogram.builder import (
    HISTOGRAM_KINDS,
    LabelPathHistogram,
    build_histogram,
    domain_frequencies,
)
from repro.histogram.vopt import VOptimalHistogram
from repro.ordering.base import Ordering
from repro.ordering.ranking import AlphabeticalRanking, CardinalityRanking
from repro.ordering.registry import (
    PAPER_ORDERINGS,
    available_orderings,
    make_ordering,
    make_paper_orderings,
)
from repro.ordering.sum_based import SumBasedOrdering
from repro.paths.catalog import SelectivityCatalog
from repro.paths.label_path import LabelPath

__all__ = [
    "HISTOGRAM_KINDS",
    "PAPER_ORDERINGS",
    "AlphabeticalRanking",
    "CardinalityRanking",
    "Edge",
    "ExactOracle",
    "LabelPath",
    "LabelPathHistogram",
    "LabeledDiGraph",
    "Ordering",
    "PathSelectivityEstimator",
    "SelectivityCatalog",
    "SumBasedOrdering",
    "SweepResult",
    "VOptimalHistogram",
    "available_orderings",
    "build_histogram",
    "domain_frequencies",
    "error_rate",
    "make_ordering",
    "make_paper_orderings",
    "mean_error_rate",
    "q_error",
    "run_sweep",
]
