"""Histogram domain ordering for path selectivity estimation.

A from-scratch Python reproduction of Yakovets et al., *Histogram Domain
Ordering for Path Selectivity Estimation*, EDBT 2018.  The package is split
into focused subpackages:

* :mod:`repro.graph` — edge-labeled graph storage, IO, generators, matrices;
* :mod:`repro.paths` — label paths, evaluation, enumeration, the catalog;
* :mod:`repro.ordering` — ranking rules, the num/lex/sum-based/ideal orderings;
* :mod:`repro.histogram` — equi-width/equi-depth/MaxDiff/end-biased/V-optimal;
* :mod:`repro.estimation` — estimators, error metrics, workloads, sweeps;
* :mod:`repro.optimizer` — a path-query planner consuming the estimates;
* :mod:`repro.engine` — the batched estimation engine with artifact caching;
* :mod:`repro.serving` — the concurrent estimation service (session
  registry, micro-batching scheduler, asyncio + HTTP front-ends);
* :mod:`repro.datasets` — Table 3 dataset stand-ins;
* :mod:`repro.experiments` — the per-table/per-figure harnesses;
* :mod:`repro.core` — the curated "paper surface" re-exports.

The most common entry points are re-exported here for convenience.
"""

from repro.core import (
    HISTOGRAM_KINDS,
    PAPER_ORDERINGS,
    AlphabeticalRanking,
    CardinalityRanking,
    Edge,
    ExactOracle,
    LabelPath,
    LabelPathHistogram,
    LabeledDiGraph,
    Ordering,
    PathSelectivityEstimator,
    SelectivityCatalog,
    SumBasedOrdering,
    VOptimalHistogram,
    available_orderings,
    build_histogram,
    domain_frequencies,
    error_rate,
    make_ordering,
    make_paper_orderings,
    mean_error_rate,
    q_error,
    run_sweep,
)
from repro.engine import ArtifactCache, EngineConfig, EstimationSession
from repro.exceptions import ReproError
from repro.graph.delta import GraphDelta
from repro.serving import EstimationService, ServiceClient, SessionRegistry

__version__ = "1.0.0"

__all__ = [
    "HISTOGRAM_KINDS",
    "PAPER_ORDERINGS",
    "AlphabeticalRanking",
    "ArtifactCache",
    "CardinalityRanking",
    "Edge",
    "EngineConfig",
    "EstimationSession",
    "ExactOracle",
    "GraphDelta",
    "LabelPath",
    "LabelPathHistogram",
    "LabeledDiGraph",
    "Ordering",
    "PathSelectivityEstimator",
    "ReproError",
    "SelectivityCatalog",
    "SumBasedOrdering",
    "VOptimalHistogram",
    "__version__",
    "available_orderings",
    "build_histogram",
    "domain_frequencies",
    "error_rate",
    "make_ordering",
    "make_paper_orderings",
    "mean_error_rate",
    "q_error",
    "run_sweep",
]
