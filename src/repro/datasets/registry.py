"""Dataset stand-ins for the paper's Table 3.

The paper evaluates on four datasets:

=============  ============  =========  ========  ===========
Dataset        #Edge Labels  #Vertices  #Edges    Real world?
=============  ============  =========  ========  ===========
Moreno Health  6             2 539      12 969    yes
DBpedia (sub)  8             37 374     209 068   yes
SNAP-ER        6             12 333     147 996   no
SNAP-FF        8             50 000     132 673   no
=============  ============  =========  ========  ===========

The real datasets cannot be shipped, so each has a generator that produces a
graph with the same number of edge labels, and (scaled) vertex/edge counts,
and — for the "real" stand-ins — Zipf-skewed, vertex-correlated label
frequencies (the property the paper credits for the behaviour of real data
in Figure 2).  The synthetic datasets use the same generative models the
paper used (Erdős–Rényi and Forest-Fire) with uniform labels.

``scale`` shrinks vertex and edge counts proportionally (label count is kept)
so that full-domain catalogs for k ≥ 3 can be built quickly in pure Python;
``scale=1.0`` reproduces the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.exceptions import DatasetError
from repro.graph.digraph import LabeledDiGraph
from repro.graph.generators import (
    correlated_label_graph,
    erdos_renyi_graph,
    forest_fire_graph,
)

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "moreno_like",
    "dbpedia_like",
    "snap_er_like",
    "snap_ff_like",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one of the paper's datasets (Table 3 row)."""

    name: str
    label_count: int
    vertex_count: int
    edge_count: int
    real_world: bool
    description: str = ""

    def as_table_row(self) -> dict[str, object]:
        """The row shape of the paper's Table 3."""
        return {
            "Dataset": self.name,
            "#Edge Labels": self.label_count,
            "#Vertices": self.vertex_count,
            "#Edges": self.edge_count,
            "Real world data": "yes" if self.real_world else "no",
        }


#: The paper's Table 3, verbatim.
PAPER_DATASETS: dict[str, DatasetSpec] = {
    "moreno-health": DatasetSpec(
        name="moreno-health",
        label_count=6,
        vertex_count=2539,
        edge_count=12969,
        real_world=True,
        description="Adolescent friendship network (KONECT moreno_health) stand-in",
    ),
    "dbpedia": DatasetSpec(
        name="dbpedia",
        label_count=8,
        vertex_count=37374,
        edge_count=209068,
        real_world=True,
        description="DBpedia knowledge-graph subgraph stand-in",
    ),
    "snap-er": DatasetSpec(
        name="snap-er",
        label_count=6,
        vertex_count=12333,
        edge_count=147996,
        real_world=False,
        description="Erdős–Rényi random graph with uniform labels",
    ),
    "snap-ff": DatasetSpec(
        name="snap-ff",
        label_count=8,
        vertex_count=50000,
        edge_count=132673,
        real_world=False,
        description="Forest-Fire random graph with uniform labels",
    ),
}


def available_datasets() -> tuple[str, ...]:
    """Names accepted by :func:`load_dataset`, in the paper's Table 3 order."""
    return tuple(PAPER_DATASETS)


def dataset_spec(name: str) -> DatasetSpec:
    """The Table 3 specification of the dataset called ``name``."""
    try:
        return PAPER_DATASETS[name.strip().lower()]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from None


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def moreno_like(*, scale: float = 1.0, seed: int = 7) -> LabeledDiGraph:
    """Stand-in for Moreno Health: 6 labels, skewed & correlated frequencies."""
    spec = PAPER_DATASETS["moreno-health"]
    return correlated_label_graph(
        _scaled(spec.vertex_count, scale, 30),
        _scaled(spec.edge_count, scale, 60),
        spec.label_count,
        skew=1.0,
        correlation=0.55,
        seed=seed,
        name=spec.name,
    )


def dbpedia_like(*, scale: float = 1.0, seed: int = 11) -> LabeledDiGraph:
    """Stand-in for the DBpedia subgraph: 8 labels, strong skew & correlation."""
    spec = PAPER_DATASETS["dbpedia"]
    return correlated_label_graph(
        _scaled(spec.vertex_count, scale, 40),
        _scaled(spec.edge_count, scale, 80),
        spec.label_count,
        skew=1.3,
        correlation=0.7,
        seed=seed,
        name=spec.name,
    )


def snap_er_like(*, scale: float = 1.0, seed: int = 13) -> LabeledDiGraph:
    """Stand-in for SNAP-ER: Erdős–Rényi topology, uniform labels."""
    spec = PAPER_DATASETS["snap-er"]
    return erdos_renyi_graph(
        _scaled(spec.vertex_count, scale, 30),
        _scaled(spec.edge_count, scale, 60),
        spec.label_count,
        seed=seed,
        name=spec.name,
    )


def snap_ff_like(*, scale: float = 1.0, seed: int = 17) -> LabeledDiGraph:
    """Stand-in for SNAP-FF: Forest-Fire topology, uniform labels."""
    spec = PAPER_DATASETS["snap-ff"]
    vertex_count = _scaled(spec.vertex_count, scale, 30)
    return forest_fire_graph(
        vertex_count,
        spec.label_count,
        forward_probability=0.30,
        backward_probability=0.25,
        seed=seed,
        name=spec.name,
    )


_GENERATORS: dict[str, Callable[..., LabeledDiGraph]] = {
    "moreno-health": moreno_like,
    "dbpedia": dbpedia_like,
    "snap-er": snap_er_like,
    "snap-ff": snap_ff_like,
}


def load_dataset(
    name: str, *, scale: float = 1.0, seed: Optional[int] = None
) -> LabeledDiGraph:
    """Generate the stand-in graph for the dataset called ``name``.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    scale:
        Proportional shrink factor for vertex and edge counts (1.0 = paper
        sizes).  Experiments default to small scales so full catalogs build
        quickly; the shapes under study are scale-invariant.
    seed:
        Optional seed override (each dataset has its own stable default).
    """
    key = name.strip().lower()
    if key not in _GENERATORS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    if scale <= 0:
        raise DatasetError("scale must be positive")
    generator = _GENERATORS[key]
    if seed is None:
        return generator(scale=scale)
    return generator(scale=scale, seed=seed)
