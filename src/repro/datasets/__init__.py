"""Dataset stand-ins matching the paper's Table 3."""

from repro.datasets.registry import (
    PAPER_DATASETS,
    DatasetSpec,
    available_datasets,
    dataset_spec,
    dbpedia_like,
    load_dataset,
    moreno_like,
    snap_er_like,
    snap_ff_like,
)

__all__ = [
    "PAPER_DATASETS",
    "DatasetSpec",
    "available_datasets",
    "dataset_spec",
    "dbpedia_like",
    "load_dataset",
    "moreno_like",
    "snap_er_like",
    "snap_ff_like",
]
