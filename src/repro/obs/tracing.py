"""Per-request tracing: spans, context propagation, JSON logs, slowest-N.

A :class:`Trace` is created once per HTTP request (honouring any
``X-Request-Id`` the client sent, else minting one with
:func:`new_request_id`) and *activated* on the handling thread via
:func:`activate`, which binds it to a context variable.  Downstream code
never threads a trace argument around — it calls the module-level
:func:`span` context manager, which times its block and attaches the span
to whatever trace is active, or does nothing at all when no trace is
(so the engine's hot paths stay uninstrumented for library callers).

Crossing the scheduler's thread boundary is explicit: the HTTP handler's
active trace is captured into the queued request object at submit time
and re-activated by the worker around the batch work, so spans such as
``registry.build`` and ``session.histogram`` land in the originating
request's trace even though they run on another thread.

Finished traces are emitted as one structured JSON log line each (see
:func:`configure_logging` — wired to ``repro serve --log-json``) and
recorded in a :class:`TraceStore`, which keeps the most recent and the
slowest N for ``GET /traces``.
"""

from __future__ import annotations

import bisect
import contextvars
import json
import logging
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "Span",
    "Trace",
    "TraceStore",
    "activate",
    "configure_logging",
    "current_trace",
    "emit_trace",
    "new_request_id",
    "set_tracing_enabled",
    "span",
    "tracing_enabled",
]

_enabled = True


def set_tracing_enabled(enabled: bool) -> None:
    """Globally enable or disable per-request tracing.

    The HTTP layer consults this before creating a :class:`Trace` for a
    request; with tracing off, requests run bare (no spans, nothing
    recorded, nothing logged) while ``/traces`` keeps answering with
    whatever was already retained.  The benchmark suite throws this
    switch together with :func:`repro.obs.metrics.set_enabled` to time
    the fully uninstrumented baseline.
    """
    global _enabled
    _enabled = bool(enabled)


def tracing_enabled() -> bool:
    """Whether per-request traces should be created (see :func:`set_tracing_enabled`)."""
    return _enabled

_current: "contextvars.ContextVar[Optional[Trace]]" = contextvars.ContextVar(
    "repro_trace", default=None
)

_logger = logging.getLogger("repro.trace")


def new_request_id() -> str:
    """A fresh 32-hex-character request id."""
    return uuid.uuid4().hex


class Span:
    """One timed step inside a trace: a name, a duration, optional attributes."""

    __slots__ = ("name", "seconds", "attrs")

    def __init__(self, name: str, seconds: float, attrs: dict[str, object]) -> None:
        self.name = name
        self.seconds = seconds
        self.attrs = attrs

    def as_row(self) -> dict[str, object]:
        """JSON-ready representation (used by ``/traces`` and the log line)."""
        row: dict[str, object] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            row["attrs"] = self.attrs
        return row


class Trace:
    """A request's span collection, safe to append to from any thread.

    The HTTP layer creates one per request, activates it while handling,
    and calls :meth:`finish` with the response status once the response is
    written.  Spans appended after ``finish`` (a scheduler worker racing a
    request timeout) are accepted but no longer change the recorded total.
    """

    __slots__ = (
        "request_id",
        "route",
        "started_unix",
        "_started",
        "_lock",
        "_spans",
        "status",
        "seconds",
        "finished",
    )

    def __init__(self, request_id: Optional[str] = None, route: str = "") -> None:
        self.request_id = request_id if request_id else new_request_id()
        self.route = route
        self.started_unix = time.time()
        self._started = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self.status: Optional[int] = None
        self.seconds: Optional[float] = None
        self.finished = False

    def add_span(self, name: str, seconds: float, **attrs: object) -> None:
        """Attach one pre-timed span (used across the worker thread boundary)."""
        with self._lock:
            self._spans.append(Span(name, seconds, dict(attrs)))

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Time the enclosed block and attach it as a span."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_span(name, time.perf_counter() - started, **attrs)

    def finish(self, status: Optional[int] = None) -> float:
        """Seal the trace with the response ``status``; returns total seconds.

        Idempotent: the first call wins, later calls return the recorded
        duration unchanged.
        """
        with self._lock:
            if not self.finished:
                self.finished = True
                self.status = status
                self.seconds = time.perf_counter() - self._started
            return self.seconds if self.seconds is not None else 0.0

    def spans(self) -> list[Span]:
        """A snapshot of the spans attached so far."""
        with self._lock:
            return list(self._spans)

    def as_row(self) -> dict[str, object]:
        """JSON-ready representation (``/traces`` rows, JSON log lines)."""
        with self._lock:
            return {
                "request_id": self.request_id,
                "route": self.route,
                "started_unix": self.started_unix,
                "status": self.status,
                "seconds": self.seconds,
                "spans": [span.as_row() for span in self._spans],
            }


def current_trace() -> Optional[Trace]:
    """The trace active on this thread/context, if any."""
    return _current.get()


@contextmanager
def activate(trace: Optional[Trace]) -> Iterator[Optional[Trace]]:
    """Make ``trace`` the active trace for the enclosed block.

    Passing ``None`` deactivates tracing inside the block (used by the
    benchmark baseline).  Always restores the previous state on exit.
    """
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Time the enclosed block into the active trace — no-op without one.

    This is the hook the engine and registry call: library users who never
    activate a trace pay one context-variable read and nothing else.
    """
    trace = _current.get()
    if trace is None:
        yield
        return
    with trace.span(name, **attrs):
        yield


class TraceStore:
    """Finished traces worth showing: the most recent and the slowest N."""

    def __init__(self, slowest: int = 32, recent: int = 32) -> None:
        if slowest < 1 or recent < 1:
            raise ValueError("TraceStore sizes must be >= 1")
        self._slowest_limit = slowest
        self._recent_limit = recent
        self._lock = threading.Lock()
        self._slowest: list[Trace] = []
        self._recent: list[Trace] = []
        self._recorded = 0

    def record(self, trace: Trace) -> None:
        """Add a finished trace, evicting the fastest/oldest beyond the caps."""
        seconds = trace.seconds or 0.0
        with self._lock:
            self._recorded += 1
            self._recent.append(trace)
            if len(self._recent) > self._recent_limit:
                self._recent.pop(0)
            # ``_slowest`` is kept sorted ascending so a full window can
            # reject a fast trace with one comparison; ``snapshot`` reverses.
            if len(self._slowest) < self._slowest_limit:
                bisect.insort(self._slowest, trace, key=lambda t: t.seconds or 0.0)
            elif seconds > (self._slowest[0].seconds or 0.0):
                self._slowest.pop(0)
                bisect.insort(self._slowest, trace, key=lambda t: t.seconds or 0.0)

    def recorded(self) -> int:
        """Total traces ever recorded (not just the retained window)."""
        with self._lock:
            return self._recorded

    def find(self, request_id: str) -> Optional[Trace]:
        """The retained trace with ``request_id``, if still in a window."""
        with self._lock:
            for trace in self._recent + self._slowest:
                if trace.request_id == request_id:
                    return trace
        return None

    def snapshot(self) -> dict[str, object]:
        """JSON-ready document backing ``GET /traces``."""
        with self._lock:
            return {
                "recorded_total": self._recorded,
                "slowest": [trace.as_row() for trace in reversed(self._slowest)],
                "recent": [trace.as_row() for trace in reversed(self._recent)],
            }


class _JsonFormatter(logging.Formatter):
    """One JSON object per log record; trace rows pass through unwrapped."""

    def format(self, record: logging.LogRecord) -> str:
        document = getattr(record, "trace_row", None)
        if document is None:
            document = {
                "ts": record.created,
                "level": record.levelname.lower(),
                "logger": record.name,
                "message": record.getMessage(),
            }
        else:
            document = {
                "ts": record.created,
                "level": record.levelname.lower(),
                "logger": record.name,
                **document,
            }
        return json.dumps(document, default=str)


def configure_logging(*, json_lines: bool = False, level: str = "info") -> None:
    """Wire the ``repro`` logger hierarchy to stderr at ``level``.

    ``json_lines`` selects the structured formatter (one JSON object per
    line — what ``repro serve --log-json`` emits); otherwise a terse
    human-readable format is used.  Idempotent: reconfiguring replaces the
    handler installed by a previous call instead of stacking another.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False


def emit_trace(trace: Trace) -> None:
    """Log a finished trace as one structured line (INFO on ``repro.trace``)."""
    if not _logger.isEnabledFor(logging.INFO):
        return
    row = trace.as_row()
    _logger.info(
        "request %s %s -> %s in %.6fs",
        trace.request_id,
        trace.route,
        trace.status,
        trace.seconds or 0.0,
        extra={"trace_row": row},
    )
