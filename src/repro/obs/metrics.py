"""Thread-safe metric primitives and a Prometheus text-format registry.

Three instrument kinds, mirroring the Prometheus data model without the
dependency:

* :class:`Counter` — monotonically increasing totals (requests, errors);
* :class:`Gauge` — a point-in-time value that can go up and down (queue
  depth, resident sessions), optionally read from a callable at scrape
  time so the gauge is always current without a write on every change;
* :class:`Histogram` — fixed cumulative buckets plus ``sum``/``count``
  (and ``min``/``max``, which Prometheus does not expose but ``/stats``
  does).

Instruments carry **label names** declared up front; each observed label
*value* combination becomes one child series.  Children are capped at
:data:`MAX_LABEL_SETS` per instrument — the first overflowing combination
is collapsed into a reserved ``other`` child so an unbounded label (say, a
client-controlled graph name) can never grow the registry without bound.

A :class:`MetricsRegistry` maps instrument names to instruments and
renders them all in the Prometheus text exposition format (version
0.0.4).  Registration is **replace-on-register**: creating an instrument
under an existing name atomically takes over that name's exposition slot.
Components such as the scheduler's :class:`~repro.serving.scheduler.ServiceStats`
therefore own fresh instrument objects per instance (tests see exact
per-instance counts) while ``GET /metrics`` always shows the most
recently constructed — i.e. the live server's — instruments.

The module-level kill switch :func:`set_enabled` turns every mutation
into a no-op; the benchmark suite uses it to measure the instrumentation
overhead floor against a genuinely uninstrumented baseline.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BUILD_BUCKETS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "MAX_LABEL_SETS",
    "default_registry",
    "metrics_enabled",
    "set_enabled",
]

#: Default bucket upper bounds (seconds) for latency histograms: half a
#: millisecond — the micro-batching window's order of magnitude — up to
#: ten seconds, roughly 2.5x apart.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default bucket upper bounds for size histograms (batch paths, coalesced
#: requests): powers of two up to the scheduler's default path budget.
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Bucket bounds (seconds) for build/update latency: catalog construction
#: runs orders of magnitude longer than estimates, so the latency scale is
#: extended up to two minutes.
BUILD_BUCKETS: tuple[float, ...] = LATENCY_BUCKETS + (30.0, 60.0, 120.0)

#: Cap on distinct label-value combinations per instrument; overflow
#: collapses into one reserved child (see :data:`OVERFLOW_LABEL_VALUE`).
MAX_LABEL_SETS = 64

#: The label value every overflowing combination is collapsed into.
OVERFLOW_LABEL_VALUE = "other"

_enabled = True


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable metric mutation (scrapes still work).

    Disabling makes :meth:`Counter.inc`, :meth:`Gauge.set` and
    :meth:`Histogram.observe` return immediately; existing values are kept
    as-is.  This is the benchmark suite's uninstrumented baseline switch —
    production code never calls it.
    """
    global _enabled
    _enabled = bool(enabled)


def metrics_enabled() -> bool:
    """Whether metric mutation is currently enabled."""
    return _enabled


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_series(name: str, labels: tuple[tuple[str, str], ...], value: float) -> str:
    """One exposition line: ``name{k="v",...} value``."""
    if labels:
        inner = ",".join(f'{key}="{_escape_label_value(val)}"' for key, val in labels)
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Instrument:
    """Shared plumbing: name/help/label validation, child-series management."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - mirrors the exposition keyword
        *,
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
        max_label_sets: int = MAX_LABEL_SETS,
    ) -> None:
        if not name or not name.replace("_", "a").replace(":", "a").isalnum():
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._max_label_sets = max(1, int(max_label_sets))
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        target = registry if registry is not None else default_registry()
        target.register(self)

    # -- child management ------------------------------------------------
    def _labelvalues(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _child(self, values: tuple[str, ...]) -> object:
        child = self._children.get(values)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(values)
            if child is None:
                if len(self._children) >= self._max_label_sets:
                    # Cardinality cap: collapse the overflow into one
                    # reserved child instead of growing without bound.
                    values = tuple(OVERFLOW_LABEL_VALUE for _ in values)
                    child = self._children.get(values)
                    if child is not None:
                        return child
                child = self._new_child()
                self._children[values] = child
        return child

    def _new_child(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def _sorted_children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def label_set_count(self) -> int:
        """Number of live child series (after any overflow collapse)."""
        with self._lock:
            return len(self._children)

    # -- exposition ------------------------------------------------------
    def render(self) -> Iterable[str]:  # pragma: no cover - overridden
        """Yield this instrument's exposition lines (``# HELP`` first)."""
        raise NotImplementedError

    def _header(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]


class _CounterChild:
    __slots__ = ("value", "lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (default 1) to the child named by ``labels``."""
        if not _enabled:
            return
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        child = self._child(self._labelvalues(labels))
        with child.lock:
            child.value += amount

    def value(self, **labels: object) -> float:
        """Current total — summed over every child when ``labels`` is empty."""
        if labels or not self.labelnames:
            child = self._child(self._labelvalues(labels))
            with child.lock:
                return child.value
        return sum(child.value for _, child in self._sorted_children())

    def render(self) -> Iterable[str]:
        """Exposition lines: one sample per child series."""
        lines = self._header()
        children = self._sorted_children()
        if not children and not self.labelnames:
            children = [((), self._child(()))]
        for values, child in children:
            labels = tuple(zip(self.labelnames, values))
            with child.lock:
                lines.append(_format_series(self.name, labels, child.value))
        return lines


class _GaugeChild:
    __slots__ = ("value", "fn", "lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.fn: Optional[Callable[[], float]] = None
        self.lock = threading.Lock()


class Gauge(_Instrument):
    """A point-in-time value; set directly or read from a callable at scrape."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: object) -> None:
        """Set the child named by ``labels`` to ``value``."""
        if not _enabled:
            return
        child = self._child(self._labelvalues(labels))
        with child.lock:
            child.value = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to the child named by ``labels``."""
        if not _enabled:
            return
        child = self._child(self._labelvalues(labels))
        with child.lock:
            child.value += amount

    def set_function(self, fn: Callable[[], float], **labels: object) -> None:
        """Read this child from ``fn()`` at scrape time (live values, no writes).

        A raising/stale callable degrades to the last directly-set value
        rather than failing the whole scrape.
        """
        child = self._child(self._labelvalues(labels))
        with child.lock:
            child.fn = fn

    def value(self, **labels: object) -> float:
        """The child's current value (calling its scrape function if set)."""
        child = self._child(self._labelvalues(labels))
        with child.lock:
            if child.fn is not None:
                try:
                    return float(child.fn())
                except Exception:  # noqa: BLE001 - scrape must not fail
                    pass
            return child.value

    def render(self) -> Iterable[str]:
        """Exposition lines: one sample per child series."""
        lines = self._header()
        children = self._sorted_children()
        if not children and not self.labelnames:
            children = [((), self._child(()))]
        for values, child in children:
            labels = tuple(zip(self.labelnames, values))
            with child.lock:
                value = child.value
                fn = child.fn
            if fn is not None:
                try:
                    value = float(fn())
                except Exception:  # noqa: BLE001 - scrape must not fail
                    pass
            lines.append(_format_series(self.name, labels, value))
        return lines


class _HistogramChild:
    __slots__ = ("counts", "sum", "count", "min", "max", "lock")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * bucket_count
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")
        self.lock = threading.Lock()


class Histogram(_Instrument):
    """Fixed cumulative buckets + sum/count (+ min/max for ``/stats``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - mirrors the exposition keyword
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
        max_label_sets: int = MAX_LABEL_SETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"{name}: buckets must be a sorted non-empty sequence")
        self.buckets = bounds
        super().__init__(
            name,
            help,
            labelnames=labelnames,
            registry=registry,
            max_label_sets=max_label_sets,
        )

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(len(self.buckets))

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the child named by ``labels``."""
        if not _enabled:
            return
        value = float(value)
        child = self._child(self._labelvalues(labels))
        with child.lock:
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    child.counts[index] += 1
                    break
            child.sum += value
            child.count += 1
            if value < child.min:
                child.min = value
            if value > child.max:
                child.max = value

    # -- readers (back the /stats snapshot keys) -------------------------
    def _reduce(self, field: str, zero: float, combine: Callable) -> float:
        children = self._sorted_children()
        if not children:
            return zero
        result = zero
        for _, child in children:
            with child.lock:
                result = combine(result, getattr(child, field))
        return result

    def total(self, **labels: object) -> float:
        """Sum of observed values (one child, or all children when unlabelled)."""
        if labels or not self.labelnames:
            child = self._child(self._labelvalues(labels))
            with child.lock:
                return child.sum
        return self._reduce("sum", 0.0, lambda a, b: a + b)

    def count(self, **labels: object) -> int:
        """Number of observations (all children when ``labels`` is empty)."""
        if labels or not self.labelnames:
            child = self._child(self._labelvalues(labels))
            with child.lock:
                return child.count
        return int(self._reduce("count", 0, lambda a, b: a + b))

    def minimum(self) -> float:
        """Smallest observed value across every child, ``0.0`` when empty."""
        value = self._reduce("min", float("inf"), min)
        return 0.0 if value == float("inf") else value

    def maximum(self) -> float:
        """Largest observed value across every child, ``0.0`` when empty."""
        value = self._reduce("max", float("-inf"), max)
        return 0.0 if value == float("-inf") else value

    def mean(self) -> float:
        """Mean observed value across every child, ``0.0`` when empty."""
        count = self.count()
        return (self.total() / count) if count else 0.0

    def render(self) -> Iterable[str]:
        """Exposition lines: cumulative ``_bucket`` series plus sum/count."""
        lines = self._header()
        children = self._sorted_children()
        if not children and not self.labelnames:
            children = [((), self._child(()))]
        for values, child in children:
            labels = tuple(zip(self.labelnames, values))
            with child.lock:
                counts = list(child.counts)
                total = child.sum
                count = child.count
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                bucket_labels = labels + (("le", _format_value(bound)),)
                lines.append(
                    _format_series(f"{self.name}_bucket", bucket_labels, cumulative)
                )
            lines.append(
                _format_series(f"{self.name}_bucket", labels + (("le", "+Inf"),), count)
            )
            lines.append(_format_series(f"{self.name}_sum", labels, total))
            lines.append(_format_series(f"{self.name}_count", labels, count))
        return lines


class MetricsRegistry:
    """Named instruments, rendered together as one Prometheus text document.

    Registration is replace-on-register (see the module docstring); the
    registry never creates instruments itself — instrument constructors
    register into it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def register(self, instrument: _Instrument) -> None:
        """Attach ``instrument`` under its name, replacing any previous owner."""
        with self._lock:
            self._instruments[instrument.name] = instrument

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument currently registered under ``name``, if any."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> tuple[str, ...]:
        """Registered instrument names, sorted."""
        with self._lock:
            return tuple(sorted(self._instruments))

    def render(self) -> str:
        """The full Prometheus text exposition document (version 0.0.4)."""
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        lines: list[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


_default_registry: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every instrument joins unless told otherwise."""
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = MetricsRegistry()
    return _default_registry
