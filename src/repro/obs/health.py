"""Liveness and readiness state backing ``/healthz`` and ``/readyz``.

Liveness ("is the process up?") is trivially true whenever the server can
answer at all; what :class:`HealthState` adds is *readiness* — whether the
process should receive new traffic — computed from named boolean checks
registered by the serving layer (scheduler worker alive, scheduler still
accepting, drain not started).  The drain latch flips readiness to false
the moment a graceful shutdown begins, before the accept loop stops, so a
load balancer scraping ``/readyz`` drains traffic away instead of hitting
connection resets.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["HealthState"]


class HealthState:
    """Named readiness checks plus a one-way drain latch."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checks: dict[str, Callable[[], bool]] = {}
        self._draining = threading.Event()
        self._drain_started_unix: float = 0.0

    def add_check(self, name: str, check: Callable[[], bool]) -> None:
        """Register (or replace) a readiness check under ``name``.

        A check that raises counts as failed — readiness must never take a
        server down by throwing from a scrape.
        """
        with self._lock:
            self._checks[name] = check

    def begin_drain(self) -> None:
        """Latch the drain flag (idempotent); readiness is false from now on."""
        if not self._draining.is_set():
            self._drain_started_unix = time.time()
            self._draining.set()

    @property
    def draining(self) -> bool:
        """Whether a graceful shutdown has begun."""
        return self._draining.is_set()

    def readiness(self) -> tuple[bool, dict[str, bool]]:
        """Evaluate every check; ready iff all pass and drain has not begun."""
        with self._lock:
            checks = list(self._checks.items())
        results: dict[str, bool] = {}
        for name, check in checks:
            try:
                results[name] = bool(check())
            except Exception:  # noqa: BLE001 - a raising check is a failing check
                results[name] = False
        results["not_draining"] = not self._draining.is_set()
        return all(results.values()), results

    def as_row(self) -> dict[str, object]:
        """JSON-ready readiness document (``/readyz`` body)."""
        ready, checks = self.readiness()
        row: dict[str, object] = {
            "status": "ready" if ready else "unready",
            "checks": checks,
        }
        if self._draining.is_set():
            row["drain_started_unix"] = self._drain_started_unix
        return row
