"""Dependency-free observability: metrics, request tracing, health checks.

The :mod:`repro.obs` package is the serving layer's single source of
telemetry truth.  It contains three small, stdlib-only modules:

``metrics``
    Thread-safe :class:`~repro.obs.metrics.Counter`,
    :class:`~repro.obs.metrics.Gauge` and fixed-bucket
    :class:`~repro.obs.metrics.Histogram` primitives with label sets,
    collected into a :class:`~repro.obs.metrics.MetricsRegistry` that
    renders the Prometheus text exposition format for ``GET /metrics``.

``tracing``
    A lightweight per-request span API: a :class:`~repro.obs.tracing.Trace`
    is created at the HTTP layer (honouring ``X-Request-Id``), propagated
    through the scheduler into the session registry via a context variable,
    emitted as structured JSON log lines, and retained by a
    :class:`~repro.obs.tracing.TraceStore` for ``GET /traces``.

``health``
    :class:`~repro.obs.health.HealthState` — named readiness checks plus a
    drain latch backing ``GET /healthz`` / ``GET /readyz``.

Everything here is import-cheap and safe to call from hot paths: when
metrics are disabled (:func:`~repro.obs.metrics.set_enabled`) every
mutation is a no-op, and a span with no active trace costs one context
variable read.
"""

from repro.obs.health import HealthState
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    metrics_enabled,
    set_enabled,
)
from repro.obs.tracing import (
    Trace,
    TraceStore,
    activate,
    configure_logging,
    current_trace,
    new_request_id,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "HealthState",
    "Histogram",
    "MetricsRegistry",
    "Trace",
    "TraceStore",
    "activate",
    "configure_logging",
    "current_trace",
    "default_registry",
    "metrics_enabled",
    "new_request_id",
    "set_enabled",
    "span",
]
