"""Exception hierarchy for the ``repro`` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so downstream code can catch library failures with a
single ``except`` clause while still distinguishing the concrete cause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "UnknownVertexError",
    "UnknownLabelError",
    "GraphIOError",
    "PathError",
    "InvalidLabelPathError",
    "OrderingError",
    "IndexOutOfDomainError",
    "UnknownOrderingError",
    "HistogramError",
    "InvalidBucketCountError",
    "EstimationError",
    "DatasetError",
    "PlanningError",
    "EngineError",
    "RemoteStoreError",
    "ServingError",
    "UnknownGraphError",
    "ServiceOverloadedError",
    "GraphOverloadedError",
    "ServiceClosedError",
    "SchedulerCrashError",
    "CircuitOpenError",
    "ServiceRequestError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for errors concerning the graph substrate."""


class UnknownVertexError(GraphError, KeyError):
    """A vertex identifier was not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"unknown vertex: {vertex!r}")
        self.vertex = vertex


class UnknownLabelError(GraphError, KeyError):
    """An edge label was not present in the graph or label set."""

    def __init__(self, label: object) -> None:
        super().__init__(f"unknown edge label: {label!r}")
        self.label = label


class GraphIOError(GraphError):
    """A graph could not be read from or written to an external format."""


class PathError(ReproError):
    """Base class for label-path related errors."""


class InvalidLabelPathError(PathError, ValueError):
    """A label path expression could not be parsed or is structurally invalid."""


class OrderingError(ReproError):
    """Base class for histogram-domain ordering errors."""


class IndexOutOfDomainError(OrderingError, IndexError):
    """A positional index fell outside the ordering's domain ``[0, |Lk|)``."""

    def __init__(self, index: int, domain_size: int) -> None:
        super().__init__(
            f"index {index} outside ordering domain [0, {domain_size})"
        )
        self.index = index
        self.domain_size = domain_size


class UnknownOrderingError(OrderingError, KeyError):
    """The requested ordering name is not registered."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        message = f"unknown ordering: {name!r}"
        if available:
            message += f" (available: {', '.join(sorted(available))})"
        super().__init__(message)
        self.name = name
        self.available = tuple(available)


class HistogramError(ReproError):
    """Base class for histogram construction and lookup errors."""


class InvalidBucketCountError(HistogramError, ValueError):
    """The requested number of buckets is not usable for the given domain."""

    def __init__(self, bucket_count: int, domain_size: int | None = None) -> None:
        message = f"invalid bucket count: {bucket_count}"
        if domain_size is not None:
            message += f" for domain of size {domain_size}"
        super().__init__(message)
        self.bucket_count = bucket_count
        self.domain_size = domain_size


class EstimationError(ReproError):
    """Base class for selectivity-estimation errors."""


class DatasetError(ReproError):
    """A dataset stand-in could not be generated or resolved."""


class PlanningError(ReproError):
    """The path-query planner could not produce a plan."""


class EngineError(ReproError):
    """The batched estimation engine could not build or serve a session."""


class RemoteStoreError(EngineError):
    """A remote artifact-store operation failed (after its retry budget).

    Raised by :class:`~repro.engine.remote.RemoteArtifactStore` internals
    and by the operator-facing surfaces (``repro engine cache list
    --remote``); the cache-consultation path itself *never* propagates it —
    a remote failure on the request path degrades to a local miss and a
    cold build.  ``status`` carries the final HTTP status when the failure
    was an HTTP answer rather than a transport error.
    """

    def __init__(self, message: str, *, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServingError(ReproError):
    """Base class for errors raised by the concurrent estimation service."""


class UnknownGraphError(ServingError, KeyError):
    """The requested graph name is not registered with the service."""

    # KeyError.__str__ reprs the first argument, which would wrap every
    # message in stray quotes in HTTP bodies and CLI output.
    __str__ = Exception.__str__

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        message = f"unknown graph: {name!r}"
        if available:
            message += f" (registered: {', '.join(sorted(available))})"
        super().__init__(message)
        self.name = name
        self.available = tuple(available)


class ServiceOverloadedError(ServingError):
    """The scheduler's bounded request queue is full (backpressure signal).

    Maps to HTTP 503 with a ``Retry-After`` hint: the *whole service* is
    saturated, so the client should back off (or try another replica) and
    retry — the rejection says nothing about the request itself.
    """


class GraphOverloadedError(ServingError):
    """One graph exceeded its per-graph admission budget (rate limiting).

    Maps to HTTP 429 (with ``Retry-After``), distinct from the global-queue
    503: the service has capacity, but *this graph's* pending-request budget
    (``max_pending_per_graph``) is exhausted — the client should slow down
    traffic for this graph specifically, not the whole endpoint.
    """

    def __init__(self, graph: str, pending: int, budget: int) -> None:
        super().__init__(
            f"graph {graph!r} has {pending} requests pending "
            f"(per-graph budget {budget})"
        )
        self.graph = graph
        self.pending = pending
        self.budget = budget


class ServiceClosedError(ServingError):
    """A request was submitted after the service shut down."""


class SchedulerCrashError(ServingError):
    """The scheduler worker crashed while this request was in flight.

    The supervisor fails the crashed batch with this error and restarts the
    worker, so the condition is transient: the HTTP layer maps it to 503
    with a ``Retry-After`` hint and a retrying client recovers on the
    restarted worker.
    """


class CircuitOpenError(ServingError):
    """A graph's circuit breaker is open: builds are failing, fast-fail now.

    Raised by the registry instead of re-running a build that has already
    failed ``threshold`` consecutive times.  Carries the seconds until the
    next half-open probe (``retry_after``) and the cached failure message,
    so clients get an actionable 503 in microseconds instead of paying the
    doomed multi-second build on every request.
    """

    def __init__(
        self,
        name: str,
        *,
        retry_after: float,
        failures: int,
        last_error: str = "",
    ) -> None:
        message = (
            f"circuit open for graph {name!r} after {failures} consecutive "
            f"build failures; retry in {retry_after:.1f}s"
        )
        if last_error:
            message += f" (last error: {last_error})"
        super().__init__(message)
        self.name = name
        self.retry_after = retry_after
        self.failures = failures
        self.last_error = last_error


class ServiceRequestError(ServingError):
    """A client request failed after exhausting its retry/deadline budget.

    Raised by :class:`~repro.serving.client.ServiceClient` with enough
    structure for callers to react programmatically: ``status`` is the HTTP
    status code (``None`` for connection errors and client-side deadline
    exhaustion), ``retry_after`` the server's parsed ``Retry-After`` hint in
    seconds when one was sent (429/503 responses), ``attempts`` how many
    attempts were made before giving up, ``request_id`` the ``X-Request-Id``
    the client sent, for correlation with server-side traces and logs, and
    ``code`` / ``envelope`` the machine-readable error code and the full
    parsed v1 error envelope (``{"error", "code", "retry_after",
    "request_id"}``) from the server's last non-2xx response, when one was
    received.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        retry_after: float | None = None,
        attempts: int = 1,
        request_id: str | None = None,
        code: str | None = None,
        envelope: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after
        self.attempts = attempts
        self.request_id = request_id
        self.code = code
        self.envelope = envelope
