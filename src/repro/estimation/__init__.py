"""Selectivity estimation: estimators, baselines, error metrics, workloads and sweeps."""

from repro.estimation.baselines import IndependenceEstimator, MarkovEstimator
from repro.estimation.errors import (
    ErrorSummary,
    absolute_error,
    error_rate,
    mean_error_rate,
    q_error,
    summarize_errors,
)
from repro.estimation.estimator import (
    EstimatorReport,
    ExactOracle,
    PathSelectivityEstimator,
)
from repro.estimation.evaluation import SweepResult, run_sweep
from repro.estimation.sampling import SamplingEstimator
from repro.estimation.workload import (
    fixed_length_workload,
    full_domain_workload,
    positive_workload,
    sampled_workload,
)

__all__ = [
    "ErrorSummary",
    "EstimatorReport",
    "ExactOracle",
    "IndependenceEstimator",
    "MarkovEstimator",
    "PathSelectivityEstimator",
    "SamplingEstimator",
    "SweepResult",
    "absolute_error",
    "error_rate",
    "fixed_length_workload",
    "full_domain_workload",
    "mean_error_rate",
    "positive_workload",
    "q_error",
    "run_sweep",
    "sampled_workload",
    "summarize_errors",
]
