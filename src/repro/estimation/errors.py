"""Estimation error metrics.

The paper scores estimates with the bounded relative error of Equation 6::

    err(ℓ) = 0                                  if e(ℓ) = f(ℓ)
           = (e(ℓ) − f(ℓ)) / max(e(ℓ), f(ℓ))    otherwise

which lies in ``(−1, 1)``; Figure 2 reports the *mean error rate*, i.e. the
mean of its absolute value over a query workload.  The classical q-error and
plain absolute error are provided as well for the extended analyses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import EstimationError

__all__ = [
    "error_rate",
    "absolute_error",
    "q_error",
    "mean_error_rate",
    "ErrorSummary",
    "summarize_errors",
]


def error_rate(estimate: float, truth: float) -> float:
    """The paper's Equation 6 error of a single estimate (signed, in (−1, 1)).

    Both arguments must be non-negative (selectivities and their estimates).
    """
    if estimate < 0 or truth < 0:
        raise EstimationError(
            f"selectivities must be non-negative (estimate={estimate}, truth={truth})"
        )
    if estimate == truth:
        return 0.0
    return (estimate - truth) / max(estimate, truth)


def absolute_error(estimate: float, truth: float) -> float:
    """Plain absolute error ``|e − f|``."""
    return abs(estimate - truth)


def q_error(estimate: float, truth: float) -> float:
    """The q-error ``max(e, f) / min(e, f)`` with the usual 0-handling.

    Both values zero is a perfect estimate (q-error 1); exactly one of them
    zero is an unbounded error (``inf``).
    """
    if estimate < 0 or truth < 0:
        raise EstimationError(
            f"selectivities must be non-negative (estimate={estimate}, truth={truth})"
        )
    if estimate == truth:
        return 1.0
    low, high = sorted((estimate, truth))
    if low == 0.0:
        return math.inf
    return high / low


def mean_error_rate(pairs: Iterable[tuple[float, float]]) -> float:
    """Mean absolute Equation-6 error over ``(estimate, truth)`` pairs.

    This is the quantity plotted in the paper's Figure 2.  Raises on an empty
    workload: a mean over nothing would silently hide a broken sweep.
    """
    total = 0.0
    count = 0
    for estimate, truth in pairs:
        total += abs(error_rate(estimate, truth))
        count += 1
    if count == 0:
        raise EstimationError("cannot compute a mean error rate over an empty workload")
    return total / count


@dataclass(frozen=True)
class ErrorSummary:
    """Aggregate error statistics of one estimator over one workload."""

    query_count: int
    mean_error_rate: float
    max_error_rate: float
    mean_absolute_error: float
    mean_q_error: float
    max_q_error: float

    def as_row(self) -> dict[str, float]:
        """A flat dict suitable for tabular reporting."""
        return {
            "queries": self.query_count,
            "mean_error_rate": self.mean_error_rate,
            "max_error_rate": self.max_error_rate,
            "mean_absolute_error": self.mean_absolute_error,
            "mean_q_error": self.mean_q_error,
            "max_q_error": self.max_q_error,
        }


def summarize_errors(pairs: Sequence[tuple[float, float]]) -> ErrorSummary:
    """Compute an :class:`ErrorSummary` over ``(estimate, truth)`` pairs.

    Infinite q-errors (zero truth vs non-zero estimate or vice versa) are
    excluded from the q-error mean but counted in ``max_q_error``.
    """
    if not pairs:
        raise EstimationError("cannot summarise an empty workload")
    rates = [abs(error_rate(estimate, truth)) for estimate, truth in pairs]
    absolutes = [absolute_error(estimate, truth) for estimate, truth in pairs]
    q_errors = [q_error(estimate, truth) for estimate, truth in pairs]
    finite_q = [value for value in q_errors if math.isfinite(value)]
    return ErrorSummary(
        query_count=len(pairs),
        mean_error_rate=sum(rates) / len(rates),
        max_error_rate=max(rates),
        mean_absolute_error=sum(absolutes) / len(absolutes),
        mean_q_error=(sum(finite_q) / len(finite_q)) if finite_q else math.inf,
        max_q_error=max(q_errors),
    )
