"""Experiment sweep runner.

:func:`run_sweep` evaluates a grid of (ordering method × bucket count ×
histogram kind) estimators over one catalog and workload, producing the flat
result records that the Table 4 and Figure 2 harnesses aggregate.  The
heavy, reusable parts (domain frequency layout per ordering) are computed
once per ordering and shared across bucket counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.estimation.estimator import EstimatorReport, PathSelectivityEstimator
from repro.estimation.workload import full_domain_workload
from repro.exceptions import EstimationError
from repro.histogram.builder import domain_frequencies
from repro.histogram.vopt import VOptimalHistogram
from repro.ordering.registry import PAPER_ORDERINGS, make_paper_orderings
from repro.paths.catalog import SelectivityCatalog
from repro.paths.label_path import LabelPath

__all__ = ["SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """One cell of an experiment grid."""

    dataset: str
    method: str
    histogram_kind: str
    max_length: int
    bucket_count: int
    mean_error_rate: float
    mean_estimation_ms: float
    max_error_rate: float = 0.0
    mean_q_error: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        row: dict[str, object] = {
            "dataset": self.dataset,
            "method": self.method,
            "histogram": self.histogram_kind,
            "k": self.max_length,
            "buckets": self.bucket_count,
            "mean_error_rate": self.mean_error_rate,
            "mean_estimation_ms": self.mean_estimation_ms,
            "max_error_rate": self.max_error_rate,
            "mean_q_error": self.mean_q_error,
        }
        row.update(self.extras)
        return row


def run_sweep(
    catalog: SelectivityCatalog,
    *,
    dataset_name: Optional[str] = None,
    methods: Sequence[str] = PAPER_ORDERINGS,
    bucket_counts: Sequence[int],
    histogram_kind: str = VOptimalHistogram.kind,
    workload: Optional[Sequence[Union[str, LabelPath]]] = None,
    repetitions: int = 1,
    include_ideal: bool = False,
    vopt_strategy: Optional[str] = None,
) -> list[SweepResult]:
    """Evaluate every (method, β) combination on one catalog.

    Parameters
    ----------
    catalog:
        The true-selectivity catalog of the dataset under study.
    methods:
        Ordering method names (defaults to the paper's five).
    bucket_counts:
        The ``β`` values to sweep.
    histogram_kind:
        Histogram type (the paper always uses ``"v-optimal"``).
    workload:
        The query workload; defaults to the full domain (Figure 2 setting).
    repetitions:
        How many times the workload is repeated for latency averaging
        (Table 4 uses 100 repetitions of its query set).
    include_ideal:
        Also evaluate the ideal (sort-by-selectivity) ordering as an
        upper-bound baseline.
    vopt_strategy:
        Optional override of the V-optimal construction strategy.
    """
    if not bucket_counts:
        raise EstimationError("bucket_counts must not be empty")
    name = dataset_name if dataset_name is not None else (catalog.graph_name or "unnamed")
    orderings = make_paper_orderings(
        catalog, include_ideal=include_ideal, names=list(methods)
    )
    queries = list(workload) if workload is not None else full_domain_workload(catalog)
    histogram_kwargs = {}
    if vopt_strategy is not None and histogram_kind == VOptimalHistogram.kind:
        histogram_kwargs["strategy"] = vopt_strategy

    results: list[SweepResult] = []
    for method_name, ordering in orderings.items():
        frequencies = domain_frequencies(catalog, ordering)
        for bucket_count in bucket_counts:
            effective_buckets = min(bucket_count, ordering.size)
            estimator = PathSelectivityEstimator.build(
                catalog,
                ordering=ordering,
                histogram_kind=histogram_kind,
                bucket_count=effective_buckets,
                frequencies=frequencies,
                **histogram_kwargs,
            )
            report: EstimatorReport = estimator.evaluate(
                catalog, queries, repetitions=repetitions
            )
            results.append(
                SweepResult(
                    dataset=name,
                    method=method_name,
                    histogram_kind=histogram_kind,
                    max_length=catalog.max_length,
                    bucket_count=bucket_count,
                    mean_error_rate=report.mean_error_rate,
                    mean_estimation_ms=report.mean_estimation_millis,
                    max_error_rate=report.errors.max_error_rate,
                    mean_q_error=report.errors.mean_q_error,
                    extras={"total_sse": estimator.histogram.total_sse()},
                )
            )
    return results
