"""Baseline selectivity estimators that do not use a histogram.

The paper's related-work section points at synopsis-free alternatives used by
existing systems; this module implements the two classical ones so the
histogram approach can be compared against them (the ``ablation_baselines``
experiment):

* :class:`IndependenceEstimator` — the textbook optimizer assumption: every
  edge traversal is independent, so
  ``e(l1/…/lk) = f(l1) · Π_{i>1} f(li) / |V|``.  Only needs the per-label
  counts and the vertex count (``|L| + 1`` stored scalars).
* :class:`MarkovEstimator` — an order-1 Markov model over adjacent labels
  (the approach behind XML path-summary estimators such as Aboulnaga et al.):
  ``e(l1/…/lk) = f(l1/l2) · Π_{i>2} f(l(i-1)/li) / f(l(i-1))``.  Needs the
  length-≤ 2 statistics (``|L| + |L|²`` scalars) and is exact for paths of
  length ≤ 2.

Both implement the same ``estimate(path)`` protocol as
:class:`~repro.estimation.estimator.PathSelectivityEstimator`, so they plug
into the sweep runner, the optimizer's cardinality model and the evaluation
utilities unchanged.
"""

from __future__ import annotations

from typing import Union

from repro.exceptions import EstimationError
from repro.paths.catalog import SelectivityCatalog
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["IndependenceEstimator", "MarkovEstimator"]

PathLike = Union[str, LabelPath]


class IndependenceEstimator:
    """Estimate path selectivity assuming independent edge traversals.

    Parameters
    ----------
    label_selectivities:
        ``f(l)`` for every single edge label.
    vertex_count:
        ``|V|`` of the graph; the expected number of continuations of a path
        through a shared intermediate vertex is ``f(l) / |V|``.
    """

    method_name = "independence"

    def __init__(self, label_selectivities: dict[str, int], vertex_count: int) -> None:
        if vertex_count < 1:
            raise EstimationError("vertex_count must be >= 1")
        if not label_selectivities:
            raise EstimationError("label_selectivities must not be empty")
        self._label_selectivities = dict(label_selectivities)
        self._vertex_count = vertex_count

    @classmethod
    def from_catalog(cls, catalog: SelectivityCatalog, vertex_count: int) -> "IndependenceEstimator":
        """Build the estimator from a catalog's single-label statistics."""
        return cls(catalog.label_selectivities(), vertex_count)

    def storage_entries(self) -> int:
        """Number of scalars the estimator keeps (``|L| + 1``)."""
        return len(self._label_selectivities) + 1

    def estimate(self, path: PathLike) -> float:
        """The independence-assumption estimate ``e(ℓ)``."""
        label_path = as_label_path(path)
        estimate = float(self._label_selectivities.get(label_path.first, 0))
        for label in label_path.labels[1:]:
            estimate *= self._label_selectivities.get(label, 0) / self._vertex_count
        return estimate


class MarkovEstimator:
    """Estimate path selectivity with an order-1 Markov model over labels.

    The estimate chains length-2 statistics: the number of ``l1/l2`` pairs,
    multiplied for every further hop by the expected extension ratio
    ``f(l_{i-1}/l_i) / f(l_{i-1})``.

    Parameters
    ----------
    catalog:
        Any catalog with ``max_length >= 2`` (only its length-1 and length-2
        statistics are consulted).
    """

    method_name = "markov-1"

    def __init__(self, catalog: SelectivityCatalog) -> None:
        if catalog.max_length < 2:
            raise EstimationError(
                "the Markov estimator needs length-2 statistics (catalog max_length >= 2)"
            )
        self._single: dict[str, int] = catalog.label_selectivities()
        self._pairs: dict[tuple[str, str], int] = {}
        for first in catalog.labels:
            for second in catalog.labels:
                self._pairs[(first, second)] = catalog.selectivity(f"{first}/{second}")

    def storage_entries(self) -> int:
        """Number of scalars the estimator keeps (``|L| + |L|²``)."""
        return len(self._single) + len(self._pairs)

    def estimate(self, path: PathLike) -> float:
        """The order-1 Markov estimate ``e(ℓ)``."""
        label_path = as_label_path(path)
        labels = label_path.labels
        if len(labels) == 1:
            return float(self._single.get(labels[0], 0))
        estimate = float(self._pairs.get((labels[0], labels[1]), 0))
        for previous, current in zip(labels[1:], labels[2:]):
            pair_count = self._pairs.get((previous, current), 0)
            previous_count = self._single.get(previous, 0)
            if previous_count == 0:
                return 0.0
            estimate *= pair_count / previous_count
        return estimate
