"""Sampling-based selectivity estimation.

A third point of comparison for the histogram approach: instead of a
precomputed synopsis, estimate ``f(ℓ)`` at query time by sampling start
edges and walking the graph.  This is the approach a system without any path
statistics would fall back to; it needs no offline construction but its cost
grows with the sample size and its variance with path length.

:class:`SamplingEstimator` samples uniformly among the edges carrying the
path's first label, counts how many sampled start edges can be extended to a
full match, and scales the resulting *source-completion* rate by ``f(l1)``.
The estimate is consistent (it converges to an upper-bound approximation of
``f(ℓ)`` that ignores end-point deduplication) and is exact for length-1
paths; its error against the true pair count is part of what the baseline
ablation measures.
"""

from __future__ import annotations

import random
from typing import Union

from repro.exceptions import EstimationError
from repro.graph.digraph import LabeledDiGraph
from repro.paths.label_path import LabelPath, as_label_path

__all__ = ["SamplingEstimator"]

PathLike = Union[str, LabelPath]


class SamplingEstimator:
    """Monte-Carlo path selectivity estimation by forward random walks.

    Parameters
    ----------
    graph:
        The graph to sample from (queried online — this estimator has no
        offline synopsis at all).
    sample_size:
        Number of start edges sampled per estimate.
    seed:
        Seed of the internal RNG (estimates are deterministic per seed).
    """

    method_name = "sampling"

    def __init__(
        self, graph: LabeledDiGraph, *, sample_size: int = 200, seed: int = 0
    ) -> None:
        if sample_size < 1:
            raise EstimationError("sample_size must be >= 1")
        self._graph = graph
        self._sample_size = sample_size
        self._rng = random.Random(seed)
        # Cache the per-label edge lists so repeated estimates do not rescan.
        self._edges_by_label: dict[str, list[tuple[object, object]]] = {}

    @property
    def sample_size(self) -> int:
        """Number of start edges sampled per estimate."""
        return self._sample_size

    def storage_entries(self) -> int:
        """The estimator stores no synopsis (0 precomputed scalars)."""
        return 0

    def _edges_for(self, label: str) -> list[tuple[object, object]]:
        cached = self._edges_by_label.get(label)
        if cached is None:
            cached = [
                (edge.source, edge.target)
                for edge in self._graph.edges_with_label(label)
            ]
            self._edges_by_label[label] = cached
        return cached

    def _walk_completes(self, start_target: object, labels: tuple[str, ...]) -> bool:
        """Whether a random walk from ``start_target`` can spell ``labels``."""
        current = start_target
        for label in labels:
            if not self._graph.has_label(label):
                return False
            successors = self._graph.forward_adjacency(label).get(current)
            if not successors:
                return False
            # Uniform random continuation — a cheap unbiased-ish walk; taking
            # all successors would be exact (and exponential).
            current = self._rng.choice(sorted(successors, key=str))
        return True

    def estimate(self, path: PathLike) -> float:
        """The sampled estimate ``e(ℓ)``."""
        label_path = as_label_path(path)
        first = label_path.first
        start_edges = self._edges_for(first) if self._graph.has_label(first) else []
        if not start_edges:
            return 0.0
        if label_path.length == 1:
            return float(len(start_edges))
        rest = label_path.labels[1:]
        draws = min(self._sample_size, len(start_edges))
        sample = (
            start_edges
            if draws == len(start_edges)
            else self._rng.sample(start_edges, draws)
        )
        completions = sum(
            1 for _, target in sample if self._walk_completes(target, rest)
        )
        completion_rate = completions / draws
        return completion_rate * len(start_edges)
