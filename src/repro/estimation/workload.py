"""Query workload generation.

The paper evaluates estimators with point queries drawn from the label-path
domain.  This module builds such workloads:

* :func:`full_domain_workload` — every path in ``Lk`` once (what Figure 2's
  mean error rate is computed over);
* :func:`sampled_workload` — a uniform sample of the domain, for quick runs
  and the latency experiment (Table 4 averages over repeated executions);
* :func:`positive_workload` — only paths that actually occur in the graph,
  optionally weighted by selectivity, modelling user queries that tend to ask
  about existing structures;
* :func:`fixed_length_workload` — only paths of one exact length.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.exceptions import EstimationError
from repro.ordering.base import Ordering
from repro.paths.catalog import SelectivityCatalog
from repro.paths.enumeration import enumerate_label_paths
from repro.paths.label_path import LabelPath

__all__ = [
    "full_domain_workload",
    "sampled_workload",
    "positive_workload",
    "fixed_length_workload",
]


def full_domain_workload(
    catalog: SelectivityCatalog, *, max_length: Optional[int] = None
) -> list[LabelPath]:
    """Every label path of the domain, in the native enumeration order."""
    length = max_length if max_length is not None else catalog.max_length
    if length > catalog.max_length:
        raise EstimationError(
            f"workload max_length={length} exceeds catalog max_length={catalog.max_length}"
        )
    return list(enumerate_label_paths(catalog.labels, length))


def sampled_workload(
    catalog: SelectivityCatalog,
    size: int,
    *,
    max_length: Optional[int] = None,
    seed: int = 0,
    ordering: Optional[Ordering] = None,
) -> list[LabelPath]:
    """A uniform random sample (with replacement) of the label-path domain.

    When an ``ordering`` is supplied, sampling draws random indices and
    unranks them (exercising the ordering's ``path``); otherwise paths are
    built directly by sampling labels, which is cheaper.
    """
    if size < 1:
        raise EstimationError("workload size must be >= 1")
    length_limit = max_length if max_length is not None else catalog.max_length
    if length_limit > catalog.max_length:
        raise EstimationError(
            f"workload max_length={length_limit} exceeds catalog max_length={catalog.max_length}"
        )
    rng = random.Random(seed)
    if ordering is not None:
        return [ordering.path(rng.randrange(ordering.size)) for _ in range(size)]
    labels: Sequence[str] = catalog.labels
    label_count = len(labels)
    # Choose lengths proportionally to the number of paths of each length, so
    # the sample matches the uniform-over-domain distribution.
    weights = [label_count**length for length in range(1, length_limit + 1)]
    workload: list[LabelPath] = []
    for _ in range(size):
        length = rng.choices(range(1, length_limit + 1), weights=weights, k=1)[0]
        workload.append(LabelPath(rng.choice(labels) for _ in range(length)))
    return workload


def positive_workload(
    catalog: SelectivityCatalog,
    size: Optional[int] = None,
    *,
    weighted: bool = False,
    seed: int = 0,
) -> list[LabelPath]:
    """Paths with non-zero selectivity, optionally sampled / frequency-weighted.

    With ``size=None`` all non-zero paths are returned once.  With a size and
    ``weighted=True`` paths are drawn with probability proportional to their
    selectivity, imitating workloads that query frequent structures more often.
    """
    nonzero = catalog.nonzero_paths()
    if not nonzero:
        raise EstimationError("the catalog has no non-zero paths to build a workload from")
    if size is None:
        return sorted(nonzero, key=lambda path: (path.length, path.labels))
    if size < 1:
        raise EstimationError("workload size must be >= 1")
    rng = random.Random(seed)
    if weighted:
        weights = [catalog.selectivity(path) for path in nonzero]
        return rng.choices(nonzero, weights=weights, k=size)
    return [rng.choice(nonzero) for _ in range(size)]


def fixed_length_workload(
    catalog: SelectivityCatalog, length: int
) -> list[LabelPath]:
    """Every label path of exactly ``length`` (for per-length error analyses)."""
    if not 1 <= length <= catalog.max_length:
        raise EstimationError(
            f"length {length} outside [1, {catalog.max_length}] for this catalog"
        )
    return [
        path
        for path in enumerate_label_paths(catalog.labels, length)
        if path.length == length
    ]
