"""The path-selectivity estimator.

:class:`PathSelectivityEstimator` is the top-level object a query optimizer
would hold: it owns an ordering, a histogram built over that ordering, and
answers ``estimate(path)`` in microseconds without touching the graph.  The
companion :class:`ExactOracle` answers from the catalog instead and is used
as the ground truth in evaluations (and as the "ideal ordering uses as much
memory as exact answers" comparison point from Section 3).
"""

from __future__ import annotations

import time
from typing import Sequence, Union

import numpy as np

from repro.estimation.errors import ErrorSummary, summarize_errors
from repro.exceptions import EstimationError
from repro.histogram.builder import LabelPathHistogram, build_histogram
from repro.histogram.vopt import VOptimalHistogram
from repro.ordering.base import Ordering
from repro.ordering.registry import make_ordering
from repro.paths.catalog import SelectivityCatalog
from repro.paths.label_path import LabelPath

__all__ = ["PathSelectivityEstimator", "ExactOracle", "EstimatorReport"]

PathLike = Union[str, LabelPath]


class ExactOracle:
    """An "estimator" that returns the exact selectivity from the catalog.

    It represents the memory-for-accuracy extreme the paper contrasts the
    ideal ordering with: storing every selectivity answers every query
    perfectly but costs ``|Lk|`` entries.
    """

    method_name = "exact"

    def __init__(self, catalog: SelectivityCatalog) -> None:
        self._catalog = catalog

    def estimate(self, path: PathLike) -> float:
        """The exact selectivity ``f(ℓ)``."""
        return float(self._catalog.selectivity(path))

    def storage_entries(self) -> int:
        """Number of stored scalars (one per path in the catalog)."""
        return len(self._catalog)


class EstimatorReport:
    """Accuracy + latency report of one estimator over one workload."""

    def __init__(
        self,
        method_name: str,
        bucket_count: int,
        errors: ErrorSummary,
        mean_estimation_seconds: float,
    ) -> None:
        self.method_name = method_name
        self.bucket_count = bucket_count
        self.errors = errors
        self.mean_estimation_seconds = mean_estimation_seconds

    @property
    def mean_error_rate(self) -> float:
        """Mean absolute Equation-6 error (the Figure 2 metric)."""
        return self.errors.mean_error_rate

    @property
    def mean_estimation_millis(self) -> float:
        """Mean per-query estimation latency in milliseconds (Table 4 metric)."""
        return self.mean_estimation_seconds * 1000.0

    def as_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        row: dict[str, object] = {
            "method": self.method_name,
            "buckets": self.bucket_count,
            "mean_estimation_ms": self.mean_estimation_millis,
        }
        row.update(self.errors.as_row())
        return row

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<EstimatorReport {self.method_name} β={self.bucket_count} "
            f"err={self.mean_error_rate:.4f} t={self.mean_estimation_millis:.4f}ms>"
        )


class PathSelectivityEstimator:
    """Histogram-backed selectivity estimator for label-path queries.

    Typically constructed with :meth:`build`, which wires together the
    catalog, the named ordering and the histogram in one call::

        estimator = PathSelectivityEstimator.build(
            catalog, ordering="sum-based", bucket_count=64)
        estimator.estimate("1/2/3")
    """

    def __init__(self, histogram: LabelPathHistogram) -> None:
        self._histogram = histogram

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        catalog: SelectivityCatalog,
        *,
        ordering: Union[str, Ordering] = "sum-based",
        histogram_kind: str = VOptimalHistogram.kind,
        bucket_count: int,
        frequencies=None,
        **histogram_kwargs,
    ) -> "PathSelectivityEstimator":
        """Build an estimator from a catalog.

        ``ordering`` may be a method name (resolved against the catalog) or a
        pre-built :class:`~repro.ordering.base.Ordering`.
        """
        ordering_obj = (
            ordering
            if isinstance(ordering, Ordering)
            else make_ordering(ordering, catalog=catalog)
        )
        label_path_histogram = build_histogram(
            catalog,
            ordering_obj,
            kind=histogram_kind,
            bucket_count=bucket_count,
            frequencies=frequencies,
            **histogram_kwargs,
        )
        return cls(label_path_histogram)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def histogram(self) -> LabelPathHistogram:
        """The underlying label-path histogram."""
        return self._histogram

    @property
    def ordering(self) -> Ordering:
        """The domain ordering in use."""
        return self._histogram.ordering

    @property
    def method_name(self) -> str:
        """The ordering method name (``num-alph``, ..., ``sum-based``)."""
        return self._histogram.method_name

    @property
    def bucket_count(self) -> int:
        """Number of histogram buckets ``β``."""
        return self._histogram.bucket_count

    def storage_entries(self) -> int:
        """Number of scalars the estimator must keep resident (``2 β``)."""
        return self._histogram.histogram.storage_entries()

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate(self, path: PathLike) -> float:
        """The selectivity estimate ``e(ℓ)``."""
        return self._histogram.estimate(path)

    def estimate_many(self, paths: Sequence[PathLike]) -> list[float]:
        """Estimates for a batch of paths, in input order."""
        return [self._histogram.estimate(path) for path in paths]

    def estimate_batch(self, paths: Sequence[PathLike]) -> np.ndarray:
        """Vectorised estimates for a batch of paths, in input order.

        Functionally identical to :meth:`estimate_many` but returns a float
        array and performs the bucket lookup as one vectorised operation.
        """
        return self._histogram.estimate_batch(paths)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        catalog: SelectivityCatalog,
        workload: Sequence[PathLike],
        *,
        repetitions: int = 1,
    ) -> EstimatorReport:
        """Score the estimator on a workload against the catalog's truths.

        Latency is measured around the ``estimate`` call only (index lookup +
        bucket lookup), averaged over ``len(workload) * repetitions`` calls,
        mirroring the paper's Table 4 methodology of averaging repeated runs.
        """
        if not workload:
            raise EstimationError("cannot evaluate on an empty workload")
        if repetitions < 1:
            raise EstimationError("repetitions must be >= 1")
        pairs: list[tuple[float, float]] = []
        start = time.perf_counter()
        for _ in range(repetitions):
            estimates = [self.estimate(path) for path in workload]
        elapsed = time.perf_counter() - start
        for path, estimate in zip(workload, estimates):
            pairs.append((estimate, float(catalog.selectivity(path))))
        mean_seconds = elapsed / (len(workload) * repetitions)
        return EstimatorReport(
            method_name=self.method_name,
            bucket_count=self.bucket_count,
            errors=summarize_errors(pairs),
            mean_estimation_seconds=mean_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<PathSelectivityEstimator method={self.method_name!r} "
            f"β={self.bucket_count}>"
        )
