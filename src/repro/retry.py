"""Shared retry core: exponential backoff, full jitter, deadlines.

Extracted from :class:`~repro.serving.client.ServiceClient` so every HTTP
caller in the stack — the serving client and the
:class:`~repro.engine.remote.RemoteArtifactStore` — shares one
implementation of the retry arithmetic instead of re-deriving it:

* **full-jitter backoff**: the pause before retry *n* is drawn uniformly
  from ``[0, min(cap, base * 2**(n-1)))``, so a thundering herd of callers
  decorrelates instead of synchronising on the exponential schedule;
* **``Retry-After`` as a lower bound**: a server hint never *shortens* the
  jittered pause, it only stretches it — the server knows when capacity
  returns, the jitter knows how to spread the load;
* **per-call deadlines**: one logical call (every attempt and every pause)
  fits inside a budget.  Per-attempt timeouts shrink to the remaining
  budget, and a pause that would sleep past the cutoff is refused outright
  so the caller surfaces the last real error instead of timing out inside
  a guaranteed-doomed sleep.

The split of responsibilities: :class:`RetryPolicy` holds the immutable
knobs, :meth:`RetryPolicy.start` opens a :class:`RetryState` for one
logical call, and the caller's loop asks the state for a clamped
per-attempt timeout (:meth:`RetryState.begin_attempt`) and for the next
pause (:meth:`RetryState.next_pause`).  The state never sleeps and never
raises — ``None`` answers mean "budget spent", and the caller decides what
error to surface (each call site has richer context than the helper).
"""

from __future__ import annotations

import random
import time
from typing import Optional

__all__ = ["RetryPolicy", "RetryState", "parse_retry_after"]


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """A ``Retry-After`` header as non-negative seconds, if parseable.

    Only the decimal-seconds form is understood (the stack's servers emit
    ``"0.050"``-style hints); HTTP-date spellings parse as ``None`` and the
    caller falls back to pure jitter.
    """
    if not value:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return max(0.0, seconds)


class RetryPolicy:
    """Immutable retry knobs shared by every call through one client.

    Parameters
    ----------
    max_retries:
        How many *re*-tries follow the first attempt (``0`` disables
        retrying entirely).
    backoff_seconds / backoff_max_seconds:
        Exponential backoff base and cap for the full-jitter draw.
    deadline_seconds:
        Default budget for one logical call including every retry and
        pause; ``None`` means attempts alone bound the call.  Individual
        calls may override via :meth:`start`.
    rng:
        Jitter source (a :class:`random.Random`); injectable for
        deterministic tests.
    """

    __slots__ = ("max_retries", "backoff", "backoff_max", "deadline", "rng")

    def __init__(
        self,
        *,
        max_retries: int = 3,
        backoff_seconds: float = 0.05,
        backoff_max_seconds: float = 2.0,
        deadline_seconds: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_seconds < 0 or backoff_max_seconds < 0:
            raise ValueError("backoff seconds must be >= 0")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be > 0")
        self.max_retries = max_retries
        self.backoff = backoff_seconds
        self.backoff_max = backoff_max_seconds
        self.deadline = deadline_seconds
        self.rng = rng if rng is not None else random.Random()

    def start(self, *, deadline_seconds: Optional[float] = None) -> "RetryState":
        """Open the retry state for one logical call.

        ``deadline_seconds`` overrides the policy-wide default for this call
        only (``None`` keeps the default).
        """
        deadline = deadline_seconds if deadline_seconds is not None else self.deadline
        return RetryState(self, deadline)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<RetryPolicy retries={self.max_retries} "
            f"backoff={self.backoff}/{self.backoff_max} deadline={self.deadline}>"
        )


class RetryState:
    """Attempt/deadline bookkeeping for one logical call.

    ``attempts`` counts attempts actually begun.  The state is not
    thread-safe; one logical call belongs to one thread.
    """

    __slots__ = ("_policy", "deadline", "_cutoff", "attempts")

    def __init__(self, policy: RetryPolicy, deadline: Optional[float]) -> None:
        self._policy = policy
        self.deadline = deadline
        self._cutoff = time.monotonic() + deadline if deadline is not None else None
        self.attempts = 0

    def remaining(self) -> Optional[float]:
        """Seconds left in the deadline budget (``None`` = unbounded)."""
        if self._cutoff is None:
            return None
        return self._cutoff - time.monotonic()

    def begin_attempt(self, timeout: float) -> Optional[float]:
        """The per-attempt timeout for the next attempt, clamped to the budget.

        Returns ``None`` — without counting an attempt — when the deadline
        is already exhausted; the caller surfaces its deadline error with
        :attr:`attempts` still holding the number of attempts that ran.
        """
        if self._cutoff is not None:
            left = self._cutoff - time.monotonic()
            if left <= 0:
                return None
            timeout = min(timeout, left)
        self.attempts += 1
        return timeout

    def next_pause(self, *, retry_after: Optional[float] = None) -> Optional[float]:
        """Seconds to sleep before the next attempt, or ``None`` to give up.

        ``None`` means either the retry budget is spent or the pause (full
        jitter, raised to any ``retry_after`` server hint) cannot fit the
        remaining deadline — in both cases the caller should surface the
        last attempt's error rather than sleep.  The caller does the
        sleeping, so it can narrate or instrument the pause first.
        """
        if self.attempts > self._policy.max_retries:
            return None
        pause = self._policy.rng.uniform(
            0.0,
            min(
                self._policy.backoff_max,
                self._policy.backoff * (2 ** (self.attempts - 1)),
            ),
        )
        if retry_after is not None:
            pause = max(pause, retry_after)
        if self._cutoff is not None and time.monotonic() + pause >= self._cutoff:
            # The pause alone would blow the budget: give up now instead of
            # sleeping into a guaranteed timeout.
            return None
        return pause

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<RetryState attempts={self.attempts} deadline={self.deadline}>"
